//! Parallel batch execution of scenario specs.
//!
//! [`BatchRunner`] expands a [`ScenarioSpec`] into its run matrix and
//! executes every run — in parallel via rayon by default — collecting
//! a [`BatchResult`] that aggregates per-cell statistics and exports
//! JSON, CSV and the ASCII report tables the older `figN` harness
//! prints.
//!
//! Determinism: every run's randomness derives from the spec's base
//! seed and the run's matrix coordinates (see
//! [`crate::spec::derive_seed`]), and the parallel map preserves
//! matrix order on collect, so results — including the serialized
//! JSON — are byte-identical at any thread count.

use crate::diff::BatchFile;
use crate::json::Json;
use crate::spec::{RunCell, ScenarioSpec};
use msn_deploy::run_scheme_with;
use msn_field::{CoverageGrid, Field};
use msn_metrics::{to_csv, Summary, Table};
use msn_sim::SimConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::fmt;

/// A scenario that failed validation before execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError(pub String);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario error: {}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

/// The metrics of one executed run of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The matrix cell this run executed.
    pub cell: RunCell,
    /// Final coverage fraction of free area.
    pub coverage: f64,
    /// Average moving distance per sensor (m).
    pub avg_move: f64,
    /// Maximum moving distance over sensors (m).
    pub max_move: f64,
    /// Total moving distance (m).
    pub total_move: f64,
    /// Total message transmissions.
    pub messages: u64,
    /// Whether every sensor ended connected to the base.
    pub connected: bool,
    /// Time to reach 95 % of final coverage, if the run converged.
    pub convergence_time: Option<f64>,
    /// Annotations such as `Disconn.` / `Incorrect VD` (Figure 10).
    pub flags: Vec<String>,
    /// Final sensor positions. Kept in memory for layout rendering
    /// and movement lower bounds; *not* serialized to `batch.json`,
    /// so records restored by batch resume carry an empty vector.
    pub positions: Vec<msn_geom::Point>,
}

/// Aggregated statistics of one (radio, n, scheme) cell over its
/// repetitions.
#[derive(Debug, Clone)]
pub struct CellStats {
    /// Radio combination.
    pub radio: crate::spec::RadioSpec,
    /// Sensor count.
    pub n: usize,
    /// Scheme.
    pub scheme: msn_deploy::SchemeKind,
    /// Variant slot index (0 when the spec declares no variants).
    pub variant: usize,
    /// Variant label (empty when the spec declares no variants).
    pub variant_label: String,
    /// Union of run flags, in first-seen order (Figure 10's
    /// `Disconn.` / `Incorrect VD` annotations).
    pub flags: Vec<String>,
    /// Coverage over repetitions.
    pub coverage: Summary,
    /// Average moving distance over repetitions.
    pub avg_move: Summary,
    /// Total messages over repetitions.
    pub messages: Summary,
    /// Number of repetitions that ended fully connected.
    pub connected_runs: usize,
    /// The per-repetition records behind the aggregates.
    pub runs: Vec<RunRecord>,
}

/// Executes [`ScenarioSpec`]s, optionally pinned to one thread.
#[derive(Debug, Clone, Default)]
pub struct BatchRunner {
    threads: Option<usize>,
}

impl BatchRunner {
    /// A runner using the shared rayon pool (all cores, or
    /// `RAYON_NUM_THREADS`).
    pub fn new() -> Self {
        BatchRunner::default()
    }

    /// Pins execution to exactly `threads` workers; `1` forces fully
    /// sequential execution (used by the determinism tests as the
    /// reference).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The number of workers a run will actually use.
    pub fn effective_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(rayon::current_num_threads)
            .max(1)
    }

    /// Expands `spec` into its run matrix and executes every run.
    pub fn run(&self, spec: &ScenarioSpec) -> Result<BatchResult, ScenarioError> {
        self.run_resuming(spec, None)
    }

    /// Like [`BatchRunner::run`], but skips matrix cells whose
    /// records are already present in `prior` (a parsed `batch.json`
    /// from an earlier, possibly interrupted, run of the same spec).
    ///
    /// Skipped records are restored from the prior file; seed
    /// derivation is coordinate-based, so the merged result — and its
    /// serialized JSON — is byte-identical to an uninterrupted run.
    /// A prior run whose environment seeds disagree with the spec's
    /// matrix (different base seed or sweep axes) is rejected.
    pub fn run_resuming(
        &self,
        spec: &ScenarioSpec,
        prior: Option<&BatchFile>,
    ) -> Result<BatchResult, ScenarioError> {
        spec.validate().map_err(ScenarioError)?;
        if let Some(prior) = prior {
            // The digest covers everything but the repetition count
            // (duration, coverage cell, params, variant overrides,
            // axes, seed), so records computed under an edited spec
            // can never be silently merged into its output.
            match &prior.spec_digest {
                Some(digest) if *digest == spec.resume_digest() => {}
                Some(digest) => {
                    return Err(ScenarioError(format!(
                        "prior batch was produced by a different spec (digest {digest}, \
                         this spec is {}): the edit would not take effect on restored \
                         records; delete the stale batch.json to run from scratch",
                        spec.resume_digest(),
                    )));
                }
                None => {
                    return Err(ScenarioError(
                        "prior batch.json has no spec_digest (written before resume \
                         support); delete it to run from scratch"
                            .into(),
                    ));
                }
            }
        }
        let cells = spec.matrix();
        let mut restored: Vec<Option<RunRecord>> = vec![None; cells.len()];
        let mut to_run = Vec::new();
        for cell in cells {
            match prior.and_then(|p| {
                p.lookup(
                    cell.radio.rc,
                    cell.radio.rs,
                    cell.n,
                    cell.scheme.name(),
                    spec.variant_label(cell.variant),
                    cell.rep,
                )
            }) {
                Some(run) => {
                    if run.env_seed != cell.env_seed {
                        return Err(ScenarioError(format!(
                            "prior batch does not match this spec: cell (rc={} rs={} n={} {} rep {}) \
                             recorded env_seed {} but the matrix derives {} — different base seed \
                             or sweep axes; delete the stale batch.json to run from scratch",
                            cell.radio.rc,
                            cell.radio.rs,
                            cell.n,
                            cell.scheme.name(),
                            cell.rep,
                            run.env_seed,
                            cell.env_seed,
                        )));
                    }
                    restored[cell.index] = Some(RunRecord {
                        cell,
                        coverage: run.coverage,
                        avg_move: run.avg_move,
                        max_move: run.max_move,
                        total_move: run.total_move,
                        messages: run.messages,
                        connected: run.connected,
                        convergence_time: run.convergence_time,
                        flags: run.flags.clone(),
                        positions: Vec::new(),
                    });
                }
                None => to_run.push(cell),
            }
        }
        // Fixed field layouts are rasterized once and shared by every
        // run; randomized fields are drawn per-cell from the env seed.
        let shared = (!spec.field.is_randomized()).then(|| {
            let mut unused_rng = SmallRng::seed_from_u64(0);
            let field = spec.field.build(&mut unused_rng);
            let grid = CoverageGrid::new(&field, spec.coverage_cell);
            (field, grid)
        });
        let shared = shared.as_ref();
        let executed: Vec<RunRecord> = match self.threads {
            Some(1) => to_run
                .into_iter()
                .map(|cell| execute(spec, cell, shared))
                .collect(),
            Some(threads) => run_pinned(spec, to_run, threads, shared),
            // The rayon shim preserves input order on collect, so the
            // record order below is the matrix order at any pool size.
            None => to_run
                .into_par_iter()
                .map(|cell| execute(spec, cell, shared))
                .collect(),
        };
        let mut executed = executed.into_iter();
        let records: Vec<RunRecord> = restored
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| executed.next().expect("one executed record per empty slot"))
            })
            .collect();
        Ok(BatchResult {
            spec: spec.clone(),
            records,
        })
    }
}

/// Executes the matrix on exactly `threads` scoped workers (bypassing
/// the shared rayon pool), writing results back by position so record
/// order still equals input order.
fn run_pinned(
    spec: &ScenarioSpec,
    cells: Vec<RunCell>,
    threads: usize,
    shared: Option<&(Field, CoverageGrid)>,
) -> Vec<RunRecord> {
    use std::collections::VecDeque;
    use std::sync::Mutex;
    let n = cells.len();
    let queue: Mutex<VecDeque<(usize, RunCell)>> =
        Mutex::new(cells.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<RunRecord>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let job = queue.lock().unwrap().pop_front();
                match job {
                    Some((i, cell)) => {
                        let record = execute(spec, cell, shared);
                        *slots[i].lock().unwrap() = Some(record);
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker completed every job")
        })
        .collect()
}

/// Executes one cell of the matrix. `shared` carries the pre-built
/// field and coverage raster when the field layout is fixed.
fn execute(
    spec: &ScenarioSpec,
    cell: RunCell,
    shared: Option<&(Field, CoverageGrid)>,
) -> RunRecord {
    let cfg = SimConfig::paper(cell.radio.rc, cell.radio.rs)
        .with_duration(spec.duration)
        .with_coverage_cell(spec.coverage_cell)
        .with_seed(cell.sim_seed());
    let overrides = spec.effective_overrides(cell.variant);
    let r = match shared {
        Some((field, grid)) => {
            let initial = cell.build_scatter(spec, field);
            run_scheme_with(cell.scheme, field, &initial, &cfg, &overrides, Some(grid))
        }
        None => {
            let (field, initial) = cell.build_environment(spec);
            run_scheme_with(cell.scheme, &field, &initial, &cfg, &overrides, None)
        }
    };
    RunRecord {
        cell,
        coverage: r.coverage,
        avg_move: r.avg_move,
        max_move: r.max_move,
        total_move: r.total_move,
        messages: r.messages.total(),
        connected: r.connected,
        convergence_time: r.convergence_time,
        flags: r.flags,
        positions: r.positions,
    }
}

/// The outcome of a batch: the spec it ran plus every run record, in
/// matrix order.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// The executed spec.
    pub spec: ScenarioSpec,
    /// One record per matrix cell, in matrix order.
    pub records: Vec<RunRecord>,
}

impl BatchResult {
    /// Groups records into per-(radio, n, variant, scheme)
    /// aggregates, in matrix order.
    pub fn cell_stats(&self) -> Vec<CellStats> {
        let mut stats: Vec<CellStats> = Vec::new();
        for record in &self.records {
            let cell = &record.cell;
            let existing = stats.iter_mut().find(|s| {
                s.radio == cell.radio
                    && s.n == cell.n
                    && s.scheme == cell.scheme
                    && s.variant == cell.variant
            });
            let slot = match existing {
                Some(slot) => slot,
                None => {
                    stats.push(CellStats {
                        radio: cell.radio,
                        n: cell.n,
                        scheme: cell.scheme,
                        variant: cell.variant,
                        variant_label: self.spec.variant_label(cell.variant).to_string(),
                        flags: Vec::new(),
                        coverage: Summary::new(),
                        avg_move: Summary::new(),
                        messages: Summary::new(),
                        connected_runs: 0,
                        runs: Vec::new(),
                    });
                    stats.last_mut().expect("just pushed")
                }
            };
            slot.coverage.add(record.coverage);
            slot.avg_move.add(record.avg_move);
            slot.messages.add(record.messages as f64);
            slot.connected_runs += usize::from(record.connected);
            for flag in &record.flags {
                if !slot.flags.contains(flag) {
                    slot.flags.push(flag.clone());
                }
            }
            slot.runs.push(record.clone());
        }
        stats
    }

    /// All records of one scheme, in matrix order (e.g. to build the
    /// CDFs of Figure 13).
    pub fn scheme_records(&self, scheme: msn_deploy::SchemeKind) -> Vec<&RunRecord> {
        self.records
            .iter()
            .filter(|r| r.cell.scheme == scheme)
            .collect()
    }

    /// Serializes the batch as deterministic JSON: the spec header,
    /// per-cell aggregates and the raw per-run samples.
    pub fn to_json(&self) -> String {
        let spec = &self.spec;
        let has_variants = !spec.variants.is_empty();
        let cells: Vec<Json> = self
            .cell_stats()
            .into_iter()
            .map(|s| {
                let runs: Vec<Json> = s
                    .runs
                    .iter()
                    .map(|r| {
                        let mut run = Json::obj()
                            .field("rep", r.cell.rep)
                            .field("env_seed", r.cell.env_seed)
                            .field("coverage", r.coverage)
                            .field("avg_move", r.avg_move)
                            .field("max_move", r.max_move)
                            .field("total_move", r.total_move)
                            .field("messages", r.messages)
                            .field("connected", r.connected)
                            .field(
                                "convergence_time",
                                r.convergence_time.filter(|t| t.is_finite()),
                            );
                        if !r.flags.is_empty() {
                            run = run.field(
                                "flags",
                                Json::Arr(r.flags.iter().map(|f| f.as_str().into()).collect()),
                            );
                        }
                        run
                    })
                    .collect();
                let mut cell = Json::obj()
                    .field("rc", s.radio.rc)
                    .field("rs", s.radio.rs)
                    .field("n", s.n)
                    .field("scheme", s.scheme.name());
                if has_variants {
                    cell = cell.field("variant", s.variant_label.as_str());
                }
                cell.field("coverage", summary_json(&s.coverage))
                    .field("avg_move", summary_json(&s.avg_move))
                    .field("messages", summary_json(&s.messages))
                    .field("connected_runs", s.connected_runs)
                    .field("runs", Json::Arr(runs))
            })
            .collect();
        Json::obj()
            .field("scenario", spec.name.as_str())
            .field("description", spec.description.as_str())
            .field("field", spec.field.kind())
            .field("scatter", spec.scatter.kind())
            .field("seed", spec.seed)
            .field("spec_digest", spec.resume_digest())
            .field("repetitions", spec.repetitions)
            .field("duration", spec.duration)
            .field("coverage_cell", spec.coverage_cell)
            .field("total_runs", self.records.len())
            .field("cells", Json::Arr(cells))
            .pretty()
    }

    /// Serializes per-cell aggregates as CSV.
    pub fn to_csv(&self) -> String {
        let headers: Vec<String> = [
            "scenario",
            "rc",
            "rs",
            "n",
            "scheme",
            "variant",
            "reps",
            "coverage_mean",
            "coverage_ci95",
            "coverage_min",
            "coverage_max",
            "avg_move_mean",
            "avg_move_ci95",
            "messages_mean",
            "connected_runs",
        ]
        .into_iter()
        .map(String::from)
        .collect();
        let rows: Vec<Vec<String>> = self
            .cell_stats()
            .into_iter()
            .map(|s| {
                vec![
                    self.spec.name.clone(),
                    format!("{:?}", s.radio.rc),
                    format!("{:?}", s.radio.rs),
                    s.n.to_string(),
                    s.scheme.name().to_string(),
                    s.variant_label.clone(),
                    s.coverage.count().to_string(),
                    format!("{:.6}", s.coverage.mean()),
                    format!("{:.6}", s.coverage.ci95_half_width()),
                    format!("{:.6}", s.coverage.min()),
                    format!("{:.6}", s.coverage.max()),
                    format!("{:.3}", s.avg_move.mean()),
                    format!("{:.3}", s.avg_move.ci95_half_width()),
                    format!("{:.1}", s.messages.mean()),
                    s.connected_runs.to_string(),
                ]
            })
            .collect();
        to_csv(&headers, &rows)
    }

    /// Formats the ASCII report: one coverage table per radio
    /// combination (rows: sensor counts; columns: schemes), plus a
    /// moving-distance table.
    pub fn report(&self) -> String {
        let spec = &self.spec;
        let mut out = format!(
            "Scenario '{}' — field: {}, scatter: {}, {} runs ({} reps)\n",
            spec.name,
            spec.field.kind(),
            spec.scatter.kind(),
            self.records.len(),
            spec.repetitions,
        );
        if !spec.description.is_empty() {
            out.push_str(&format!("{}\n", spec.description));
        }
        let stats = self.cell_stats();
        let has_variants = !spec.variants.is_empty();
        for radio in &spec.radios {
            out.push_str(&format!("\n{radio}\n"));
            let mut headers = vec!["n".to_string()];
            if has_variants {
                headers.push("variant".to_string());
            }
            for scheme in &spec.schemes {
                headers.push(format!("{scheme} cov"));
            }
            for scheme in &spec.schemes {
                headers.push(format!("{scheme} move (m)"));
            }
            let mut table = Table::new(headers);
            for &n in &spec.sensor_counts {
                for variant in 0..spec.variant_count() {
                    let mut row = vec![n.to_string()];
                    if has_variants {
                        row.push(spec.variant_label(variant).to_string());
                    }
                    let find = |scheme| {
                        stats.iter().find(|s| {
                            s.radio == *radio
                                && s.n == n
                                && s.scheme == scheme
                                && s.variant == variant
                        })
                    };
                    for &scheme in &spec.schemes {
                        row.push(find(scheme).map_or("-".into(), |s| fmt_pct(&s.coverage)));
                    }
                    for &scheme in &spec.schemes {
                        row.push(find(scheme).map_or("-".into(), |s| fmt_move(&s.avg_move)));
                    }
                    table.row(row);
                }
            }
            out.push_str(&format!("{table}\n"));
        }
        out
    }
}

fn summary_json(s: &Summary) -> Json {
    Json::obj()
        .field("mean", s.mean())
        .field("ci95", s.ci95_half_width())
        .field(
            "min",
            if s.is_empty() {
                Json::Null
            } else {
                s.min().into()
            },
        )
        .field(
            "max",
            if s.is_empty() {
                Json::Null
            } else {
                s.max().into()
            },
        )
        .field("count", s.count())
}

/// `"52.3%"`, with a `±` half-width when there are repetitions.
fn fmt_pct(s: &Summary) -> String {
    if s.count() > 1 {
        format!(
            "{:.1}%±{:.1}",
            s.mean() * 100.0,
            s.ci95_half_width() * 100.0
        )
    } else {
        format!("{:.1}%", s.mean() * 100.0)
    }
}

/// `"384"`, with a `±` half-width when there are repetitions.
fn fmt_move(s: &Summary) -> String {
    if s.count() > 1 {
        format!("{:.0}±{:.0}", s.mean(), s.ci95_half_width())
    } else {
        format!("{:.0}", s.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FieldSpec, ScenarioSpec};
    use msn_deploy::SchemeKind;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::new("tiny")
            .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
            .with_sensor_counts(vec![12, 20])
            .with_radios(vec![(60.0, 40.0)])
            .with_duration(30.0)
            .with_coverage_cell(20.0)
            .with_repetitions(2)
    }

    #[test]
    fn runs_and_aggregates() {
        let result = BatchRunner::new().run(&tiny_spec()).unwrap();
        assert_eq!(result.records.len(), 2 * 2 * 2);
        let stats = result.cell_stats();
        assert_eq!(stats.len(), 2 * 2, "one aggregate per (n, scheme)");
        for s in &stats {
            assert_eq!(s.coverage.count(), 2);
            assert!(s.coverage.mean() > 0.0, "{} covered nothing", s.scheme);
            assert_eq!(s.runs.len(), 2);
        }
        assert_eq!(result.scheme_records(SchemeKind::Cpvf).len(), 4);
    }

    #[test]
    fn outputs_are_well_formed() {
        let result = BatchRunner::new()
            .with_threads(1)
            .run(&tiny_spec())
            .unwrap();
        let json = result.to_json();
        assert!(json.contains("\"scenario\": \"tiny\""));
        assert!(json.contains("\"scheme\": \"CPVF\""));
        assert!(json.contains("\"runs\""));
        let csv = result.to_csv();
        assert_eq!(csv.lines().count(), 1 + 4, "header + one row per cell");
        assert!(csv.starts_with("scenario,rc,rs,n,scheme"));
        let report = result.report();
        assert!(report.contains("Scenario 'tiny'"));
        assert!(report.contains("CPVF cov"));
        assert!(report.contains('%'));
    }

    #[test]
    fn pinned_thread_counts_match_sequential_output() {
        let spec = tiny_spec();
        let sequential = BatchRunner::new().with_threads(1).run(&spec).unwrap();
        let pinned = BatchRunner::new().with_threads(3).run(&spec).unwrap();
        assert_eq!(sequential.to_json(), pinned.to_json());
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let bad = tiny_spec().with_schemes(vec![]);
        assert!(BatchRunner::new().run(&bad).is_err());
    }

    #[test]
    fn resume_reproduces_uninterrupted_output_byte_for_byte() {
        let full_spec = tiny_spec();
        let full = BatchRunner::new().with_threads(1).run(&full_spec).unwrap();
        // "interrupt" after the first repetition: run the same spec
        // with fewer reps, persist, then resume at the full rep count
        let partial_spec = full_spec.clone().with_repetitions(1);
        let partial = BatchRunner::new()
            .with_threads(1)
            .run(&partial_spec)
            .unwrap();
        let prior = BatchFile::parse(&partial.to_json()).unwrap();
        let resumed = BatchRunner::new()
            .with_threads(1)
            .run_resuming(&full_spec, Some(&prior))
            .unwrap();
        assert_eq!(resumed.to_json(), full.to_json());
        assert_eq!(resumed.to_csv(), full.to_csv());
    }

    #[test]
    fn resume_actually_skips_cached_cells() {
        let spec = tiny_spec();
        let full = BatchRunner::new().with_threads(1).run(&spec).unwrap();
        let mut prior = BatchFile::parse(&full.to_json()).unwrap();
        // poison one cached record; if resume re-executed the cell the
        // poisoned value could not survive into the merged output
        prior.cells[0].1.get_mut(&0).unwrap().coverage = 0.123456789;
        let resumed = BatchRunner::new()
            .with_threads(1)
            .run_resuming(&spec, Some(&prior))
            .unwrap();
        assert!(
            resumed.to_json().contains("0.123456789"),
            "cached record was re-executed instead of restored"
        );
    }

    #[test]
    fn resume_rejects_mismatched_seed_policy() {
        let spec = tiny_spec();
        let full = BatchRunner::new().with_threads(1).run(&spec).unwrap();
        let prior = BatchFile::parse(&full.to_json()).unwrap();
        let reseeded = spec.with_seed(4242);
        let err = BatchRunner::new()
            .with_threads(1)
            .run_resuming(&reseeded, Some(&prior))
            .unwrap_err();
        assert!(err.0.contains("different spec"), "{}", err.0);
    }

    #[test]
    fn resume_rejects_edited_durations_and_params() {
        use msn_deploy::{FloorOverrides, SchemeOverrides};
        let spec = tiny_spec();
        let full = BatchRunner::new().with_threads(1).run(&spec).unwrap();
        let prior = BatchFile::parse(&full.to_json()).unwrap();
        // env seeds are untouched by these edits, but the digest
        // catches them: restored records would not reflect the edit
        let quickened = spec.clone().with_duration(10.0);
        assert!(BatchRunner::new()
            .run_resuming(&quickened, Some(&prior))
            .is_err());
        let reparam = spec.clone().with_params(SchemeOverrides {
            floor: FloorOverrides {
                ttl: Some(3),
                ..Default::default()
            },
            ..Default::default()
        });
        assert!(BatchRunner::new()
            .run_resuming(&reparam, Some(&prior))
            .is_err());
        // extending repetitions stays allowed
        assert!(BatchRunner::new()
            .run_resuming(&spec.with_repetitions(3), Some(&prior))
            .is_ok());
    }

    #[test]
    fn variant_sweep_runs_and_labels_cells() {
        use msn_deploy::{FloorOverrides, SchemeOverrides};
        let spec = ScenarioSpec::new("ttl-sweep")
            .with_schemes(vec![SchemeKind::Floor])
            .with_sensor_counts(vec![12])
            .with_duration(30.0)
            .with_coverage_cell(20.0)
            .with_variant("ttl-1", {
                SchemeOverrides {
                    floor: FloorOverrides {
                        ttl: Some(1),
                        ..Default::default()
                    },
                    ..Default::default()
                }
            })
            .with_variant("ttl-frac", {
                SchemeOverrides {
                    floor: FloorOverrides {
                        ttl_frac: Some(0.5),
                        ..Default::default()
                    },
                    ..Default::default()
                }
            });
        let result = BatchRunner::new().with_threads(1).run(&spec).unwrap();
        assert_eq!(result.records.len(), 2);
        let stats = result.cell_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].variant_label, "ttl-1");
        assert_eq!(stats[1].variant_label, "ttl-frac");
        let json = result.to_json();
        assert!(json.contains("\"variant\": \"ttl-1\""), "{json}");
        let csv = result.to_csv();
        assert!(csv.lines().next().unwrap().contains("variant"));
        let report = result.report();
        assert!(report.contains("ttl-1"), "{report}");
    }

    #[test]
    fn fixed_field_grid_cache_matches_uncached_environments() {
        // the shared-field path must reproduce build_environment's
        // scatter exactly (independent RNG streams)
        let spec = tiny_spec();
        let cells = spec.matrix();
        let (field, initial) = cells[0].build_environment(&spec);
        let scatter_only = cells[0].build_scatter(&spec, &field);
        assert_eq!(initial, scatter_only);
    }

    #[test]
    fn randomized_fields_vary_per_rep_but_not_per_scheme() {
        let spec = ScenarioSpec::new("rnd")
            .with_field(FieldSpec::RandomObstacles(Default::default()))
            .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
            .with_sensor_counts(vec![10])
            .with_duration(10.0)
            .with_coverage_cell(25.0)
            .with_repetitions(2);
        let cells = spec.matrix();
        let (f0, i0) = cells[0].build_environment(&spec);
        let (f1, i1) = cells[1].build_environment(&spec);
        // same rep, different scheme: identical environment
        assert_eq!(f0.obstacles().len(), f1.obstacles().len());
        assert_eq!(i0, i1);
        // different rep: different environment
        let (_, i2) = cells[2].build_environment(&spec);
        assert_ne!(i0, i2);
    }
}
