//! Parallel batch execution of scenario specs.
//!
//! [`BatchRunner`] expands a [`ScenarioSpec`] into its run matrix and
//! executes every run — in parallel via rayon by default — collecting
//! a [`BatchResult`] that aggregates per-cell statistics and exports
//! JSON, CSV and the ASCII report tables the older `figN` harness
//! prints.
//!
//! Determinism: every run's randomness derives from the spec's base
//! seed and the run's matrix coordinates (see
//! [`crate::spec::derive_seed`]), and the parallel map preserves
//! matrix order on collect, so results — including the serialized
//! JSON — are byte-identical at any thread count.

use crate::json::Json;
use crate::spec::{RunCell, ScenarioSpec};
use msn_deploy::run_scheme;
use msn_metrics::{to_csv, Summary, Table};
use msn_sim::SimConfig;
use rayon::prelude::*;
use std::fmt;

/// A scenario that failed validation before execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError(pub String);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario error: {}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

/// The metrics of one executed run of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The matrix cell this run executed.
    pub cell: RunCell,
    /// Final coverage fraction of free area.
    pub coverage: f64,
    /// Average moving distance per sensor (m).
    pub avg_move: f64,
    /// Maximum moving distance over sensors (m).
    pub max_move: f64,
    /// Total moving distance (m).
    pub total_move: f64,
    /// Total message transmissions.
    pub messages: u64,
    /// Whether every sensor ended connected to the base.
    pub connected: bool,
    /// Time to reach 95 % of final coverage, if the run converged.
    pub convergence_time: Option<f64>,
}

/// Aggregated statistics of one (radio, n, scheme) cell over its
/// repetitions.
#[derive(Debug, Clone)]
pub struct CellStats {
    /// Radio combination.
    pub radio: crate::spec::RadioSpec,
    /// Sensor count.
    pub n: usize,
    /// Scheme.
    pub scheme: msn_deploy::SchemeKind,
    /// Coverage over repetitions.
    pub coverage: Summary,
    /// Average moving distance over repetitions.
    pub avg_move: Summary,
    /// Total messages over repetitions.
    pub messages: Summary,
    /// Number of repetitions that ended fully connected.
    pub connected_runs: usize,
    /// The per-repetition records behind the aggregates.
    pub runs: Vec<RunRecord>,
}

/// Executes [`ScenarioSpec`]s, optionally pinned to one thread.
#[derive(Debug, Clone, Default)]
pub struct BatchRunner {
    threads: Option<usize>,
}

impl BatchRunner {
    /// A runner using the shared rayon pool (all cores, or
    /// `RAYON_NUM_THREADS`).
    pub fn new() -> Self {
        BatchRunner::default()
    }

    /// Pins execution to exactly `threads` workers; `1` forces fully
    /// sequential execution (used by the determinism tests as the
    /// reference).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Expands `spec` into its run matrix and executes every run.
    pub fn run(&self, spec: &ScenarioSpec) -> Result<BatchResult, ScenarioError> {
        spec.validate().map_err(ScenarioError)?;
        let cells = spec.matrix();
        let records: Vec<RunRecord> = match self.threads {
            Some(1) => cells.into_iter().map(|cell| execute(spec, cell)).collect(),
            Some(threads) => run_pinned(spec, cells, threads),
            // The rayon shim preserves input order on collect, so the
            // record order below is the matrix order at any pool size.
            None => cells
                .into_par_iter()
                .map(|cell| execute(spec, cell))
                .collect(),
        };
        Ok(BatchResult {
            spec: spec.clone(),
            records,
        })
    }
}

/// Executes the matrix on exactly `threads` scoped workers (bypassing
/// the shared rayon pool), writing results back by matrix index so
/// record order still equals matrix order.
fn run_pinned(spec: &ScenarioSpec, cells: Vec<RunCell>, threads: usize) -> Vec<RunRecord> {
    use std::collections::VecDeque;
    use std::sync::Mutex;
    let n = cells.len();
    let queue: Mutex<VecDeque<RunCell>> = Mutex::new(cells.into());
    let slots: Vec<Mutex<Option<RunRecord>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let job = queue.lock().unwrap().pop_front();
                match job {
                    Some(cell) => {
                        let i = cell.index;
                        let record = execute(spec, cell);
                        *slots[i].lock().unwrap() = Some(record);
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker completed every job")
        })
        .collect()
}

/// Executes one cell of the matrix.
fn execute(spec: &ScenarioSpec, cell: RunCell) -> RunRecord {
    let (field, initial) = cell.build_environment(spec);
    let cfg = SimConfig::paper(cell.radio.rc, cell.radio.rs)
        .with_duration(spec.duration)
        .with_coverage_cell(spec.coverage_cell)
        .with_seed(cell.sim_seed());
    let r = run_scheme(cell.scheme, &field, &initial, &cfg);
    RunRecord {
        cell,
        coverage: r.coverage,
        avg_move: r.avg_move,
        max_move: r.max_move,
        total_move: r.total_move,
        messages: r.messages.total(),
        connected: r.connected,
        convergence_time: r.convergence_time,
    }
}

/// The outcome of a batch: the spec it ran plus every run record, in
/// matrix order.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// The executed spec.
    pub spec: ScenarioSpec,
    /// One record per matrix cell, in matrix order.
    pub records: Vec<RunRecord>,
}

impl BatchResult {
    /// Groups records into per-(radio, n, scheme) aggregates, in
    /// matrix order.
    pub fn cell_stats(&self) -> Vec<CellStats> {
        let mut stats: Vec<CellStats> = Vec::new();
        for record in &self.records {
            let cell = &record.cell;
            let existing = stats
                .iter_mut()
                .find(|s| s.radio == cell.radio && s.n == cell.n && s.scheme == cell.scheme);
            let slot = match existing {
                Some(slot) => slot,
                None => {
                    stats.push(CellStats {
                        radio: cell.radio,
                        n: cell.n,
                        scheme: cell.scheme,
                        coverage: Summary::new(),
                        avg_move: Summary::new(),
                        messages: Summary::new(),
                        connected_runs: 0,
                        runs: Vec::new(),
                    });
                    stats.last_mut().expect("just pushed")
                }
            };
            slot.coverage.add(record.coverage);
            slot.avg_move.add(record.avg_move);
            slot.messages.add(record.messages as f64);
            slot.connected_runs += usize::from(record.connected);
            slot.runs.push(record.clone());
        }
        stats
    }

    /// All records of one scheme, in matrix order (e.g. to build the
    /// CDFs of Figure 13).
    pub fn scheme_records(&self, scheme: msn_deploy::SchemeKind) -> Vec<&RunRecord> {
        self.records
            .iter()
            .filter(|r| r.cell.scheme == scheme)
            .collect()
    }

    /// Serializes the batch as deterministic JSON: the spec header,
    /// per-cell aggregates and the raw per-run samples.
    pub fn to_json(&self) -> String {
        let spec = &self.spec;
        let cells: Vec<Json> = self
            .cell_stats()
            .into_iter()
            .map(|s| {
                let runs: Vec<Json> = s
                    .runs
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .field("rep", r.cell.rep)
                            .field("env_seed", r.cell.env_seed)
                            .field("coverage", r.coverage)
                            .field("avg_move", r.avg_move)
                            .field("max_move", r.max_move)
                            .field("total_move", r.total_move)
                            .field("messages", r.messages)
                            .field("connected", r.connected)
                            .field(
                                "convergence_time",
                                r.convergence_time.filter(|t| t.is_finite()),
                            )
                    })
                    .collect();
                Json::obj()
                    .field("rc", s.radio.rc)
                    .field("rs", s.radio.rs)
                    .field("n", s.n)
                    .field("scheme", s.scheme.name())
                    .field("coverage", summary_json(&s.coverage))
                    .field("avg_move", summary_json(&s.avg_move))
                    .field("messages", summary_json(&s.messages))
                    .field("connected_runs", s.connected_runs)
                    .field("runs", Json::Arr(runs))
            })
            .collect();
        Json::obj()
            .field("scenario", spec.name.as_str())
            .field("description", spec.description.as_str())
            .field("field", spec.field.kind())
            .field("scatter", spec.scatter.kind())
            .field("seed", spec.seed)
            .field("repetitions", spec.repetitions)
            .field("duration", spec.duration)
            .field("coverage_cell", spec.coverage_cell)
            .field("total_runs", self.records.len())
            .field("cells", Json::Arr(cells))
            .pretty()
    }

    /// Serializes per-cell aggregates as CSV.
    pub fn to_csv(&self) -> String {
        let headers: Vec<String> = [
            "scenario",
            "rc",
            "rs",
            "n",
            "scheme",
            "reps",
            "coverage_mean",
            "coverage_ci95",
            "coverage_min",
            "coverage_max",
            "avg_move_mean",
            "avg_move_ci95",
            "messages_mean",
            "connected_runs",
        ]
        .into_iter()
        .map(String::from)
        .collect();
        let rows: Vec<Vec<String>> = self
            .cell_stats()
            .into_iter()
            .map(|s| {
                vec![
                    self.spec.name.clone(),
                    format!("{:?}", s.radio.rc),
                    format!("{:?}", s.radio.rs),
                    s.n.to_string(),
                    s.scheme.name().to_string(),
                    s.coverage.count().to_string(),
                    format!("{:.6}", s.coverage.mean()),
                    format!("{:.6}", s.coverage.ci95_half_width()),
                    format!("{:.6}", s.coverage.min()),
                    format!("{:.6}", s.coverage.max()),
                    format!("{:.3}", s.avg_move.mean()),
                    format!("{:.3}", s.avg_move.ci95_half_width()),
                    format!("{:.1}", s.messages.mean()),
                    s.connected_runs.to_string(),
                ]
            })
            .collect();
        to_csv(&headers, &rows)
    }

    /// Formats the ASCII report: one coverage table per radio
    /// combination (rows: sensor counts; columns: schemes), plus a
    /// moving-distance table.
    pub fn report(&self) -> String {
        let spec = &self.spec;
        let mut out = format!(
            "Scenario '{}' — field: {}, scatter: {}, {} runs ({} reps)\n",
            spec.name,
            spec.field.kind(),
            spec.scatter.kind(),
            self.records.len(),
            spec.repetitions,
        );
        if !spec.description.is_empty() {
            out.push_str(&format!("{}\n", spec.description));
        }
        let stats = self.cell_stats();
        for radio in &spec.radios {
            out.push_str(&format!("\n{radio}\n"));
            let mut headers = vec!["n".to_string()];
            for scheme in &spec.schemes {
                headers.push(format!("{scheme} cov"));
            }
            for scheme in &spec.schemes {
                headers.push(format!("{scheme} move (m)"));
            }
            let mut table = Table::new(headers);
            for &n in &spec.sensor_counts {
                let mut row = vec![n.to_string()];
                for &scheme in &spec.schemes {
                    let cell = stats
                        .iter()
                        .find(|s| s.radio == *radio && s.n == n && s.scheme == scheme);
                    row.push(cell.map_or("-".into(), |s| fmt_pct(&s.coverage)));
                }
                for &scheme in &spec.schemes {
                    let cell = stats
                        .iter()
                        .find(|s| s.radio == *radio && s.n == n && s.scheme == scheme);
                    row.push(cell.map_or("-".into(), |s| fmt_move(&s.avg_move)));
                }
                table.row(row);
            }
            out.push_str(&format!("{table}\n"));
        }
        out
    }
}

fn summary_json(s: &Summary) -> Json {
    Json::obj()
        .field("mean", s.mean())
        .field("ci95", s.ci95_half_width())
        .field(
            "min",
            if s.is_empty() {
                Json::Null
            } else {
                s.min().into()
            },
        )
        .field(
            "max",
            if s.is_empty() {
                Json::Null
            } else {
                s.max().into()
            },
        )
        .field("count", s.count())
}

/// `"52.3%"`, with a `±` half-width when there are repetitions.
fn fmt_pct(s: &Summary) -> String {
    if s.count() > 1 {
        format!(
            "{:.1}%±{:.1}",
            s.mean() * 100.0,
            s.ci95_half_width() * 100.0
        )
    } else {
        format!("{:.1}%", s.mean() * 100.0)
    }
}

/// `"384"`, with a `±` half-width when there are repetitions.
fn fmt_move(s: &Summary) -> String {
    if s.count() > 1 {
        format!("{:.0}±{:.0}", s.mean(), s.ci95_half_width())
    } else {
        format!("{:.0}", s.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FieldSpec, ScenarioSpec};
    use msn_deploy::SchemeKind;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::new("tiny")
            .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
            .with_sensor_counts(vec![12, 20])
            .with_radios(vec![(60.0, 40.0)])
            .with_duration(30.0)
            .with_coverage_cell(20.0)
            .with_repetitions(2)
    }

    #[test]
    fn runs_and_aggregates() {
        let result = BatchRunner::new().run(&tiny_spec()).unwrap();
        assert_eq!(result.records.len(), 2 * 2 * 2);
        let stats = result.cell_stats();
        assert_eq!(stats.len(), 2 * 2, "one aggregate per (n, scheme)");
        for s in &stats {
            assert_eq!(s.coverage.count(), 2);
            assert!(s.coverage.mean() > 0.0, "{} covered nothing", s.scheme);
            assert_eq!(s.runs.len(), 2);
        }
        assert_eq!(result.scheme_records(SchemeKind::Cpvf).len(), 4);
    }

    #[test]
    fn outputs_are_well_formed() {
        let result = BatchRunner::new()
            .with_threads(1)
            .run(&tiny_spec())
            .unwrap();
        let json = result.to_json();
        assert!(json.contains("\"scenario\": \"tiny\""));
        assert!(json.contains("\"scheme\": \"CPVF\""));
        assert!(json.contains("\"runs\""));
        let csv = result.to_csv();
        assert_eq!(csv.lines().count(), 1 + 4, "header + one row per cell");
        assert!(csv.starts_with("scenario,rc,rs,n,scheme"));
        let report = result.report();
        assert!(report.contains("Scenario 'tiny'"));
        assert!(report.contains("CPVF cov"));
        assert!(report.contains('%'));
    }

    #[test]
    fn pinned_thread_counts_match_sequential_output() {
        let spec = tiny_spec();
        let sequential = BatchRunner::new().with_threads(1).run(&spec).unwrap();
        let pinned = BatchRunner::new().with_threads(3).run(&spec).unwrap();
        assert_eq!(sequential.to_json(), pinned.to_json());
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let bad = tiny_spec().with_schemes(vec![]);
        assert!(BatchRunner::new().run(&bad).is_err());
    }

    #[test]
    fn randomized_fields_vary_per_rep_but_not_per_scheme() {
        let spec = ScenarioSpec::new("rnd")
            .with_field(FieldSpec::RandomObstacles(Default::default()))
            .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
            .with_sensor_counts(vec![10])
            .with_duration(10.0)
            .with_coverage_cell(25.0)
            .with_repetitions(2);
        let cells = spec.matrix();
        let (f0, i0) = cells[0].build_environment(&spec);
        let (f1, i1) = cells[1].build_environment(&spec);
        // same rep, different scheme: identical environment
        assert_eq!(f0.obstacles().len(), f1.obstacles().len());
        assert_eq!(i0, i1);
        // different rep: different environment
        let (_, i2) = cells[2].build_environment(&spec);
        assert_ne!(i0, i2);
    }
}
