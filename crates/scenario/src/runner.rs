//! Parallel batch execution of scenario specs.
//!
//! [`BatchRunner`] expands a [`ScenarioSpec`] into its run matrix and
//! executes every run — on the shared persistent work-stealing pool
//! (`rayon::run_indexed`), one participant per core by default —
//! collecting a [`BatchResult`] that aggregates per-cell statistics
//! and exports JSON, CSV and the ASCII report tables the older `figN`
//! harness prints.
//!
//! Determinism: every run's randomness derives from the spec's base
//! seed and the run's matrix coordinates (see
//! [`crate::spec::derive_seed`]), and every record is written back to
//! its matrix slot by index, so results — including the serialized
//! JSON — are byte-identical at any thread count.
//!
//! Environments are materialized once per consumer group: fixed field
//! layouts are rasterized a single time for the whole batch, and
//! randomized (`random-obstacles`) fields once per (radio, n, rep)
//! slice — every scheme and variant of the slice shares the drawn
//! field and its [`CoverageGrid`] instead of re-rasterizing it.
//!
//! With [`RunConfig::checkpoint`], completed runs are periodically
//! flushed to `batch.json` through an atomic write-then-rename, so
//! `--resume` can pick up after a hard kill mid-batch, not just after
//! a partial-repetition run.

use crate::diff::BatchFile;
use crate::json::Json;
use crate::progress::{eta_seconds, ProgressEvent, ProgressSink};
use crate::spec::{RunCell, ScenarioSpec};
use msn_deploy::{run_scheme_dynamic, run_scheme_with};
use msn_field::{CoverageGrid, Field};
use msn_metrics::{recovery_stats, to_csv, EventMark, RecoveryStat, Summary, Table};
use msn_obs::Report;
use msn_sim::SimConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A scenario that failed validation before execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError(pub String);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario error: {}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

/// The metrics of one executed run of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The matrix cell this run executed.
    pub cell: RunCell,
    /// Final coverage fraction of free area.
    pub coverage: f64,
    /// Average moving distance per sensor (m).
    pub avg_move: f64,
    /// Maximum moving distance over sensors (m).
    pub max_move: f64,
    /// Total moving distance (m).
    pub total_move: f64,
    /// Total message transmissions.
    pub messages: u64,
    /// Whether every sensor ended connected to the base.
    pub connected: bool,
    /// Time to reach 95 % of final coverage, if the run converged.
    pub convergence_time: Option<f64>,
    /// Annotations such as `Disconn.` / `Incorrect VD` (Figure 10).
    pub flags: Vec<String>,
    /// Number of movement actions (the `world.moves` aggregate).
    /// Serialized (and aggregated) only for specs with
    /// `movement_summary` enabled; restored records from other specs
    /// carry 0.
    pub moves: u64,
    /// Commanded travel distance (m; the `world.move_dist`
    /// aggregate, excluding detour-accounting penalties). Serialized
    /// under the same `movement_summary` gate as
    /// [`RunRecord::moves`].
    pub move_dist: f64,
    /// Per-event recovery statistics (dip depth, climb-back time,
    /// movement bill). Non-empty only for specs with a `[dynamics]`
    /// schedule; serialized (and aggregated) only for those specs, so
    /// static batches stay byte-identical.
    pub recovery: Vec<RecoveryStat>,
    /// Final sensor positions. Kept in memory for layout rendering
    /// and movement lower bounds; *not* serialized to `batch.json`,
    /// so records restored by batch resume carry an empty vector —
    /// consumers must go through [`RunRecord::require_positions`].
    pub positions: Vec<msn_geom::Point>,
}

impl RunRecord {
    /// The run's final sensor positions, or a descriptive error when
    /// the record was restored from a `batch.json` (resume does not
    /// serialize layouts, so restored records carry none).
    ///
    /// Layout rendering (fig3/fig8) and movement lower bounds (fig11)
    /// must use this instead of reading
    /// [`RunRecord::positions`] directly: an empty vector would
    /// otherwise render a blank field or degenerate the Hungarian
    /// bound to zero without any indication of what went wrong.
    pub fn require_positions(&self) -> Result<&[msn_geom::Point], ScenarioError> {
        if self.positions.len() == self.cell.n {
            Ok(&self.positions)
        } else {
            Err(ScenarioError(format!(
                "run (rc={} rs={} n={} {} rep {}) carries no final positions: it was \
                 restored from an existing batch.json, and resume does not serialize \
                 layouts; re-run the cell (delete the cached batch.json or run without \
                 --resume) to recompute them",
                self.cell.radio.rc,
                self.cell.radio.rs,
                self.cell.n,
                self.cell.scheme.name(),
                self.cell.rep,
            )))
        }
    }
}

/// Aggregated statistics of one (radio, n, scheme) cell over its
/// repetitions.
#[derive(Debug, Clone)]
pub struct CellStats {
    /// Radio combination.
    pub radio: crate::spec::RadioSpec,
    /// Sensor count.
    pub n: usize,
    /// Scheme.
    pub scheme: msn_deploy::SchemeKind,
    /// Variant slot index (0 when the spec declares no variants).
    pub variant: usize,
    /// Variant label (empty when the spec declares no variants).
    pub variant_label: String,
    /// Union of run flags, in first-seen order (Figure 10's
    /// `Disconn.` / `Incorrect VD` annotations).
    pub flags: Vec<String>,
    /// Coverage over repetitions.
    pub coverage: Summary,
    /// Average moving distance over repetitions.
    pub avg_move: Summary,
    /// Total messages over repetitions.
    pub messages: Summary,
    /// Movement actions over repetitions (`world.moves`).
    pub moves: Summary,
    /// Commanded travel distance over repetitions (`world.move_dist`, m).
    pub move_dist: Summary,
    /// Recovery times over every *recovered* event of every
    /// repetition (s); unrecovered events are excluded (their time is
    /// unbounded), their count shows as the difference against
    /// [`CellStats::coverage_dip`]'s count. Populated only for
    /// `[dynamics]` specs.
    pub recovery_time: Summary,
    /// Minimum coverage during each event's dip window, over every
    /// event of every repetition. Populated only for `[dynamics]`
    /// specs.
    pub coverage_dip: Summary,
    /// Number of repetitions that ended fully connected.
    pub connected_runs: usize,
    /// The per-repetition records behind the aggregates.
    pub runs: Vec<RunRecord>,
}

/// Periodic persistence of completed runs during a batch.
#[derive(Debug, Clone)]
struct CheckpointPolicy {
    /// Destination `batch.json` (written atomically via a sibling
    /// temp file and rename).
    path: PathBuf,
    /// Completed runs between writes.
    every: usize,
}

/// Everything a batch execution can be configured with, in one
/// builder: thread pinning, checkpointing, profiling and progress
/// streaming. The CLI, the test suites and the `scenario serve`
/// daemon all assemble a `RunConfig` and turn it into a runner with
/// [`RunConfig::runner`] — the former per-knob `BatchRunner::with_*`
/// constructors survive only as deprecated shims.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    threads: Option<usize>,
    checkpoint: Option<CheckpointPolicy>,
    profiling: bool,
    progress: Option<ProgressSink>,
}

impl RunConfig {
    /// The default configuration: one worker per core (or
    /// `RAYON_NUM_THREADS`), no checkpointing, no profiling, no
    /// progress sink.
    pub fn new() -> Self {
        RunConfig::default()
    }

    /// Pins execution to exactly `threads` workers; `1` forces fully
    /// sequential execution (used by the determinism tests as the
    /// reference). `0` clamps to `1`.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Writes the completed runs to `path` after every `every`
    /// finished runs (atomic write-then-rename, so a hard kill leaves
    /// either the previous or the new checkpoint — never a torn
    /// file). A later [`BatchRunner::run_resuming`] on the parsed
    /// file skips everything the checkpoint recorded, making long
    /// batches survive SIGKILL mid-matrix. `every = 0` disables
    /// checkpointing (the CLI's `--checkpoint-every 0` convention).
    ///
    /// The final result is *not* implicitly written here — persist
    /// [`BatchResult::to_json`] as before; it is byte-identical to an
    /// uncheckpointed run.
    #[must_use]
    pub fn checkpoint(mut self, path: impl Into<PathBuf>, every: usize) -> Self {
        self.checkpoint = (every > 0).then(|| CheckpointPolicy {
            path: path.into(),
            every,
        });
        self
    }

    /// Installs an [`msn_obs`] collector around every executed run
    /// and aggregates the per-run reports into
    /// [`BatchResult::profiles`]. Strictly zero-perturbation: the
    /// batch output (JSON/CSV/report) is byte-identical with
    /// profiling on or off — the profile is a side artifact. Under
    /// the `obs-off` feature the collectors record nothing and every
    /// profile comes back `None`.
    #[must_use]
    pub fn profiling(mut self, enabled: bool) -> Self {
        self.profiling = enabled;
        self
    }

    /// Streams [`ProgressEvent`]s (batch/run lifecycle, checkpoint
    /// writes) to `sink` during execution. Workers emit concurrently;
    /// the sink must be line-atomic (see [`ProgressSink`]).
    #[must_use]
    pub fn progress(mut self, sink: ProgressSink) -> Self {
        self.progress = Some(sink);
        self
    }

    /// A [`BatchRunner`] executing under this configuration.
    pub fn runner(self) -> BatchRunner {
        BatchRunner { cfg: self }
    }
}

/// Executes [`ScenarioSpec`]s under a [`RunConfig`].
#[derive(Debug, Clone, Default)]
pub struct BatchRunner {
    cfg: RunConfig,
}

impl BatchRunner {
    /// A runner under the default [`RunConfig`]: one worker per core
    /// (or `RAYON_NUM_THREADS`).
    pub fn new() -> Self {
        BatchRunner::default()
    }

    /// Deprecated shim for [`RunConfig::threads`].
    #[deprecated(since = "0.9.0", note = "build a RunConfig and use RunConfig::threads")]
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.cfg = self.cfg.threads(threads);
        self
    }

    /// Deprecated shim for [`RunConfig::checkpoint`].
    #[deprecated(
        since = "0.9.0",
        note = "build a RunConfig and use RunConfig::checkpoint"
    )]
    #[must_use]
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>, every: usize) -> Self {
        self.cfg = self.cfg.checkpoint(path, every);
        self
    }

    /// Deprecated shim for [`RunConfig::profiling`].
    #[deprecated(
        since = "0.9.0",
        note = "build a RunConfig and use RunConfig::profiling"
    )]
    #[must_use]
    pub fn with_profiling(mut self, enabled: bool) -> Self {
        self.cfg = self.cfg.profiling(enabled);
        self
    }

    /// Deprecated shim for [`RunConfig::progress`].
    #[deprecated(
        since = "0.9.0",
        note = "build a RunConfig and use RunConfig::progress"
    )]
    #[must_use]
    pub fn with_progress(mut self, sink: ProgressSink) -> Self {
        self.cfg = self.cfg.progress(sink);
        self
    }

    /// The number of workers a run will actually use.
    pub fn effective_threads(&self) -> usize {
        self.cfg
            .threads
            .unwrap_or_else(rayon::current_num_threads)
            .max(1)
    }

    /// Expands `spec` into its run matrix and executes every run.
    pub fn run(&self, spec: &ScenarioSpec) -> Result<BatchResult, ScenarioError> {
        self.run_resuming(spec, None)
    }

    /// Like [`BatchRunner::run`], but skips matrix cells whose
    /// records are already present in `prior` (a parsed `batch.json`
    /// from an earlier, possibly interrupted, run of the same spec).
    ///
    /// Skipped records are restored from the prior file; seed
    /// derivation is coordinate-based, so the merged result — and its
    /// serialized JSON — is byte-identical to an uninterrupted run.
    /// A prior run whose environment seeds disagree with the spec's
    /// matrix (different base seed or sweep axes) is rejected.
    pub fn run_resuming(
        &self,
        spec: &ScenarioSpec,
        prior: Option<&BatchFile>,
    ) -> Result<BatchResult, ScenarioError> {
        spec.validate().map_err(ScenarioError)?;
        if let Some(prior) = prior {
            // The digest covers everything but the repetition count
            // (duration, coverage cell, params, variant overrides,
            // axes, seed), so records computed under an edited spec
            // can never be silently merged into its output.
            match &prior.spec_digest {
                Some(digest) if *digest == spec.resume_digest() => {}
                Some(digest) => {
                    return Err(ScenarioError(format!(
                        "prior batch was produced by a different spec (digest {digest}, \
                         this spec is {}): the edit would not take effect on restored \
                         records; delete the stale batch.json to run from scratch",
                        spec.resume_digest(),
                    )));
                }
                None => {
                    return Err(ScenarioError(
                        "prior batch.json has no spec_digest (written before resume \
                         support); delete it to run from scratch"
                            .into(),
                    ));
                }
            }
        }
        let cells = spec.matrix();
        let mut restored: Vec<Option<RunRecord>> = vec![None; cells.len()];
        let mut to_run = Vec::new();
        for cell in cells {
            match prior.and_then(|p| {
                p.lookup(
                    cell.radio.rc,
                    cell.radio.rs,
                    cell.n,
                    cell.scheme.name(),
                    spec.variant_label(cell.variant),
                    cell.rep,
                )
            }) {
                Some(run) => {
                    if run.env_seed != cell.env_seed {
                        return Err(ScenarioError(format!(
                            "prior batch does not match this spec: cell (rc={} rs={} n={} {} rep {}) \
                             recorded env_seed {} but the matrix derives {} — different base seed \
                             or sweep axes; delete the stale batch.json to run from scratch",
                            cell.radio.rc,
                            cell.radio.rs,
                            cell.n,
                            cell.scheme.name(),
                            cell.rep,
                            run.env_seed,
                            cell.env_seed,
                        )));
                    }
                    restored[cell.index] = Some(RunRecord {
                        cell,
                        coverage: run.coverage,
                        avg_move: run.avg_move,
                        max_move: run.max_move,
                        total_move: run.total_move,
                        messages: run.messages,
                        connected: run.connected,
                        convergence_time: run.convergence_time,
                        flags: run.flags.clone(),
                        moves: run.moves,
                        move_dist: run.move_dist,
                        recovery: run.recovery.clone(),
                        positions: Vec::new(),
                    });
                }
                None => to_run.push(cell),
            }
        }
        // Environment sharing: fixed field layouts are rasterized
        // once for the whole batch; randomized fields once per
        // (radio, n, rep) slice — every scheme and variant of a slice
        // shares the drawn field and raster (see `run_matrix`).
        let shared = (!spec.field.is_randomized() && !to_run.is_empty()).then(|| {
            let mut unused_rng = SmallRng::seed_from_u64(0);
            let field = spec.field.build(&mut unused_rng);
            let grid = CoverageGrid::new(&field, spec.coverage_cell);
            (field, grid)
        });
        let (records, profiles) = run_matrix(
            spec,
            to_run,
            self.effective_threads(),
            shared.as_ref(),
            restored,
            self.cfg.checkpoint.as_ref(),
            self.cfg.profiling,
            self.cfg.progress.as_ref(),
        );
        Ok(BatchResult {
            spec: spec.clone(),
            records,
            profiles,
        })
    }
}

/// One randomized slice's environment, built lazily by the first cell
/// that needs it and dropped by the last cell that finishes with it,
/// so memory stays bounded by the slices in flight rather than the
/// repetition count.
struct EnvSlot {
    env: std::sync::OnceLock<std::sync::Arc<(Field, CoverageGrid)>>,
    remaining: std::sync::atomic::AtomicUsize,
}

/// A worker's hold on one slice environment: the env itself plus the
/// slot it must release when the cell finishes.
type SliceEnv = (
    std::sync::Arc<(Field, CoverageGrid)>,
    std::sync::Arc<EnvSlot>,
);

/// Executes the matrix cells on up to `threads` participants of the
/// shared work-stealing pool (the calling thread included; see the
/// `rayon` shim). Cells are scheduled individually (schemes and
/// variants of one slice run concurrently); cells sharing an env seed
/// resolve the same lazily-built [`EnvSlot`] unless a batch-wide
/// `shared` env exists. Results are written back by matrix index, so
/// record order equals matrix order at any thread count. `restored`
/// pre-fills the slots of resumed cells.
#[allow(clippy::too_many_arguments)] // internal seam; the builder is the public surface
fn run_matrix(
    spec: &ScenarioSpec,
    cells: Vec<RunCell>,
    threads: usize,
    shared: Option<&(Field, CoverageGrid)>,
    restored: Vec<Option<RunRecord>>,
    checkpoint: Option<&CheckpointPolicy>,
    profiling: bool,
    progress: Option<&ProgressSink>,
) -> (Vec<RunRecord>, Vec<Option<Report>>) {
    use std::collections::HashMap;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    let envs: Mutex<HashMap<u64, Arc<EnvSlot>>> = {
        let mut map: HashMap<u64, Arc<EnvSlot>> = HashMap::new();
        if shared.is_none() {
            for cell in &cells {
                map.entry(cell.env_seed)
                    .or_insert_with(|| {
                        Arc::new(EnvSlot {
                            env: std::sync::OnceLock::new(),
                            remaining: std::sync::atomic::AtomicUsize::new(0),
                        })
                    })
                    .remaining
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        Mutex::new(map)
    };
    let workers = threads.max(1).min(cells.len().max(1));
    let to_run_total = cells.len();
    let cached = restored.iter().flatten().count();
    let slots: Vec<Mutex<Option<RunRecord>>> = restored.into_iter().map(Mutex::new).collect();
    // Per-run observation reports land next to their records, by
    // matrix index (restored cells were never executed: no profile).
    let profile_slots: Vec<Mutex<Option<Report>>> =
        (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let completed = Mutex::new(0usize);
    // Runs covered by the last checkpoint actually written; orders
    // concurrent checkpoint writers and drops stale snapshots.
    let last_written = Mutex::new(0usize);
    let started = std::time::Instant::now();
    if let Some(sink) = progress {
        sink.emit(&ProgressEvent::BatchStarted {
            scenario: spec.name.clone(),
            total: to_run_total,
            cached,
            threads: workers,
        });
    }
    rayon::run_indexed(
        cells,
        &|cell: RunCell| {
            if let Some(sink) = progress {
                sink.emit(&ProgressEvent::RunStarted {
                    index: cell.index,
                    rc: cell.radio.rc,
                    rs: cell.radio.rs,
                    n: cell.n,
                    scheme: cell.scheme.name().to_string(),
                    variant: spec.variant_label(cell.variant).to_string(),
                    rep: cell.rep,
                    env_seed: cell.env_seed,
                });
            }
            // Resolve the cell's environment: the batch-wide one,
            // or its slice's slot (first user rasterizes it).
            let local: Option<SliceEnv> = match shared {
                Some(_) => None,
                None => {
                    let slot = envs
                        .lock()
                        .unwrap()
                        .get(&cell.env_seed)
                        .expect("slot prepared for every env seed")
                        .clone();
                    let env = slot
                        .env
                        .get_or_init(|| {
                            let field = cell.build_field(spec);
                            let grid = CoverageGrid::new(&field, spec.coverage_cell);
                            Arc::new((field, grid))
                        })
                        .clone();
                    Some((env, slot))
                }
            };
            let env: &(Field, CoverageGrid) = match &local {
                Some((env, _)) => env,
                None => shared.expect("either shared or per-slice env"),
            };
            let index = cell.index;
            let env_seed = cell.env_seed;
            // The run executes entirely on this worker thread, so
            // a thread-local collector observes exactly this run.
            // Profiling feeds only the side profile table — the
            // record (and batch.json) is untouched by it.
            if profiling {
                msn_obs::start();
            }
            let record = execute(spec, cell, env);
            if profiling {
                *profile_slots[index].lock().unwrap() = msn_obs::finish();
            }
            let coverage = record.coverage;
            *slots[index].lock().unwrap() = Some(record);
            if let Some((_, slot)) = &local {
                // last cell of the slice: drop the cached env
                if slot.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    envs.lock().unwrap().remove(&env_seed);
                }
            }
            let done = {
                let mut done = completed.lock().unwrap();
                *done += 1;
                *done
            };
            if let Some(sink) = progress {
                let elapsed_s = started.elapsed().as_secs_f64();
                sink.emit(&ProgressEvent::RunFinished {
                    index,
                    rc: cell.radio.rc,
                    rs: cell.radio.rs,
                    n: cell.n,
                    scheme: cell.scheme.name().to_string(),
                    variant: spec.variant_label(cell.variant).to_string(),
                    rep: cell.rep,
                    env_seed,
                    coverage,
                    completed: done,
                    total: to_run_total,
                    elapsed_s,
                    eta_s: eta_seconds(done, to_run_total, elapsed_s),
                });
            }
            if let Some(policy) = checkpoint {
                if done.is_multiple_of(policy.every) {
                    // Snapshot, render and write outside the run
                    // counter so other workers keep finishing runs
                    // during checkpoint IO. Positions are never
                    // serialized, so the snapshot drops them
                    // instead of deep-cloning every layout.
                    let mut last = last_written.lock().unwrap();
                    let records: Vec<RunRecord> = slots
                        .iter()
                        .filter_map(|slot| {
                            slot.lock().unwrap().as_ref().map(|r| RunRecord {
                                cell: r.cell,
                                coverage: r.coverage,
                                avg_move: r.avg_move,
                                max_move: r.max_move,
                                total_move: r.total_move,
                                messages: r.messages,
                                connected: r.connected,
                                convergence_time: r.convergence_time,
                                flags: r.flags.clone(),
                                moves: r.moves,
                                move_dist: r.move_dist,
                                recovery: r.recovery.clone(),
                                positions: Vec::new(),
                            })
                        })
                        .collect();
                    if records.len() > *last {
                        *last = records.len();
                        if write_checkpoint(spec, &records, &policy.path) {
                            if let Some(sink) = progress {
                                sink.emit(&ProgressEvent::CheckpointWritten {
                                    path: policy.path.display().to_string(),
                                    runs: records.len(),
                                });
                            }
                        }
                    }
                }
            }
        },
        workers,
    );
    if let Some(sink) = progress {
        sink.emit(&ProgressEvent::BatchFinished {
            scenario: spec.name.clone(),
            total: to_run_total,
            elapsed_s: started.elapsed().as_secs_f64(),
        });
    }
    let records = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every matrix slot filled")
        })
        .collect();
    let profiles = if profiling {
        profile_slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap())
            .collect()
    } else {
        Vec::new()
    };
    (records, profiles)
}

/// Atomically persists a snapshot of completed runs as a valid
/// (partial) `batch.json`, announcing the write on stderr (a killed
/// batch is diagnosable: the last note names what `--resume` will
/// find). IO failures are reported, not fatal — a missed checkpoint
/// only costs resume granularity. Returns whether the write landed.
fn write_checkpoint(spec: &ScenarioSpec, records: &[RunRecord], path: &Path) -> bool {
    let json = render_json(spec, records);
    let tmp = path.with_extension("json.tmp");
    let result = std::fs::write(&tmp, &json).and_then(|()| std::fs::rename(&tmp, path));
    match result {
        Ok(()) => {
            eprintln!("checkpoint: {} run(s) -> {}", records.len(), path.display());
            true
        }
        Err(e) => {
            eprintln!("warning: cannot write checkpoint {}: {e}", path.display());
            false
        }
    }
}

/// Executes one cell of the matrix on its group's environment,
/// dispatching to the dynamic engine when the spec carries a
/// `[dynamics]` schedule.
fn execute(spec: &ScenarioSpec, cell: RunCell, env: &(Field, CoverageGrid)) -> RunRecord {
    let (field, grid) = env;
    let cfg = SimConfig::paper(cell.radio.rc, cell.radio.rs)
        .with_duration(spec.duration)
        .with_coverage_cell(spec.coverage_cell)
        .with_seed(cell.sim_seed());
    let overrides = spec.effective_overrides(cell.variant);
    let initial = cell.build_scatter(spec, field);
    let (r, recovery) = match &spec.dynamics {
        None => (
            run_scheme_with(cell.scheme, field, &initial, &cfg, &overrides, Some(grid)),
            Vec::new(),
        ),
        Some(schedule) => {
            let outcome = run_scheme_dynamic(
                cell.scheme,
                field,
                &initial,
                &cfg,
                &overrides,
                Some(grid),
                schedule,
                cell.event_seed(),
            );
            let marks: Vec<EventMark> = outcome
                .events
                .iter()
                .map(|e| EventMark {
                    time: e.time,
                    kind: e.kind.clone(),
                    pre_coverage: e.pre_coverage,
                    post_coverage: e.post_coverage,
                    post_move_dist: e.post_move_dist,
                })
                .collect();
            let recovery = recovery_stats(
                &outcome.result.coverage_timeline,
                &marks,
                schedule.recovery_frac,
            );
            (outcome.result, recovery)
        }
    };
    RunRecord {
        cell,
        coverage: r.coverage,
        avg_move: r.avg_move,
        max_move: r.max_move,
        total_move: r.total_move,
        messages: r.messages.total(),
        connected: r.connected,
        convergence_time: r.convergence_time,
        flags: r.flags,
        moves: r.moves,
        move_dist: r.move_dist,
        recovery,
        positions: r.positions,
    }
}

/// The outcome of a batch: the spec it ran plus every run record, in
/// matrix order.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// The executed spec.
    pub spec: ScenarioSpec,
    /// One record per matrix cell, in matrix order.
    pub records: Vec<RunRecord>,
    /// One observation report per matrix cell, in matrix order, when
    /// the batch ran with [`BatchRunner::with_profiling`] — `None`
    /// for cells restored by resume (never executed) and under the
    /// `obs-off` feature. Empty when profiling was off. Not part of
    /// any serialized batch output; aggregate it with
    /// [`crate::ProfileRecord::from_batch`].
    pub profiles: Vec<Option<Report>>,
}

/// Groups `records` into per-(radio, n, variant, scheme) aggregates,
/// in matrix order. Free function so checkpoints can aggregate a
/// partial record set mid-batch.
fn cell_stats_of(spec: &ScenarioSpec, records: &[RunRecord]) -> Vec<CellStats> {
    let mut stats: Vec<CellStats> = Vec::new();
    for record in records {
        let cell = &record.cell;
        let existing = stats.iter_mut().find(|s| {
            s.radio == cell.radio
                && s.n == cell.n
                && s.scheme == cell.scheme
                && s.variant == cell.variant
        });
        let slot = match existing {
            Some(slot) => slot,
            None => {
                stats.push(CellStats {
                    radio: cell.radio,
                    n: cell.n,
                    scheme: cell.scheme,
                    variant: cell.variant,
                    variant_label: spec.variant_label(cell.variant).to_string(),
                    flags: Vec::new(),
                    coverage: Summary::new(),
                    avg_move: Summary::new(),
                    messages: Summary::new(),
                    moves: Summary::new(),
                    move_dist: Summary::new(),
                    recovery_time: Summary::new(),
                    coverage_dip: Summary::new(),
                    connected_runs: 0,
                    runs: Vec::new(),
                });
                stats.last_mut().expect("just pushed")
            }
        };
        slot.coverage.add(record.coverage);
        slot.avg_move.add(record.avg_move);
        slot.messages.add(record.messages as f64);
        slot.moves.add(record.moves as f64);
        slot.move_dist.add(record.move_dist);
        for stat in &record.recovery {
            slot.coverage_dip.add(stat.min_coverage);
            if let Some(t) = stat.recovery_time {
                slot.recovery_time.add(t);
            }
        }
        slot.connected_runs += usize::from(record.connected);
        for flag in &record.flags {
            if !slot.flags.contains(flag) {
                slot.flags.push(flag.clone());
            }
        }
        slot.runs.push(record.clone());
    }
    stats
}

impl BatchResult {
    /// Groups records into per-(radio, n, variant, scheme)
    /// aggregates, in matrix order.
    pub fn cell_stats(&self) -> Vec<CellStats> {
        cell_stats_of(&self.spec, &self.records)
    }

    /// All records of one scheme, in matrix order (e.g. to build the
    /// CDFs of Figure 13).
    pub fn scheme_records(&self, scheme: msn_deploy::SchemeKind) -> Vec<&RunRecord> {
        self.records
            .iter()
            .filter(|r| r.cell.scheme == scheme)
            .collect()
    }

    /// Serializes the batch as deterministic JSON: the spec header,
    /// per-cell aggregates and the raw per-run samples.
    pub fn to_json(&self) -> String {
        render_json(&self.spec, &self.records)
    }
}

/// Serializes `records` as the deterministic `batch.json` document.
/// Free function so mid-batch checkpoints and the final result share
/// one format (`total_runs` reflects the records actually present).
fn render_json(spec: &ScenarioSpec, records: &[RunRecord]) -> String {
    let has_variants = !spec.variants.is_empty();
    let has_dynamics = spec.dynamics.is_some();
    let cells: Vec<Json> = cell_stats_of(spec, records)
        .into_iter()
        .map(|s| {
            let runs: Vec<Json> = s
                .runs
                .iter()
                .map(|r| {
                    let mut run = Json::obj()
                        .field("rep", r.cell.rep)
                        .field("env_seed", r.cell.env_seed)
                        .field("coverage", r.coverage)
                        .field("avg_move", r.avg_move)
                        .field("max_move", r.max_move)
                        .field("total_move", r.total_move)
                        .field("messages", r.messages);
                    if spec.movement_summary {
                        run = run.field("moves", r.moves).field("move_dist", r.move_dist);
                    }
                    run = run.field("connected", r.connected).field(
                        "convergence_time",
                        r.convergence_time.filter(|t| t.is_finite()),
                    );
                    if has_dynamics {
                        run = run.field(
                            "recovery",
                            Json::Arr(
                                r.recovery
                                    .iter()
                                    .map(|s| {
                                        Json::obj()
                                            .field("time", s.event_time)
                                            .field("kind", s.kind.as_str())
                                            .field("pre_coverage", s.pre_coverage)
                                            .field("post_coverage", s.post_coverage)
                                            .field("min_coverage", s.min_coverage)
                                            .field("recovery_time", s.recovery_time)
                                            .field("post_move_dist", s.post_move_dist)
                                    })
                                    .collect(),
                            ),
                        );
                    }
                    if !r.flags.is_empty() {
                        run = run.field(
                            "flags",
                            Json::Arr(r.flags.iter().map(|f| f.as_str().into()).collect()),
                        );
                    }
                    run
                })
                .collect();
            let mut cell = Json::obj()
                .field("rc", s.radio.rc)
                .field("rs", s.radio.rs)
                .field("n", s.n)
                .field("scheme", s.scheme.name());
            if has_variants {
                cell = cell.field("variant", s.variant_label.as_str());
            }
            cell = cell
                .field("coverage", summary_json(&s.coverage))
                .field("avg_move", summary_json(&s.avg_move))
                .field("messages", summary_json(&s.messages));
            if spec.movement_summary {
                cell = cell
                    .field("moves", summary_json(&s.moves))
                    .field("move_dist", summary_json(&s.move_dist));
            }
            if has_dynamics {
                cell = cell
                    .field("recovery_time", summary_json(&s.recovery_time))
                    .field("coverage_dip", summary_json(&s.coverage_dip));
            }
            cell.field("connected_runs", s.connected_runs)
                .field("runs", Json::Arr(runs))
        })
        .collect();
    Json::obj()
        .field("scenario", spec.name.as_str())
        .field("description", spec.description.as_str())
        .field("field", spec.field.kind())
        .field("scatter", spec.scatter.kind())
        .field("seed", spec.seed)
        .field("spec_digest", spec.resume_digest())
        .field("repetitions", spec.repetitions)
        .field("duration", spec.duration)
        .field("coverage_cell", spec.coverage_cell)
        .field("total_runs", records.len())
        .field("cells", Json::Arr(cells))
        .pretty()
}

impl BatchResult {
    /// Serializes per-cell aggregates as CSV.
    pub fn to_csv(&self) -> String {
        let mut headers: Vec<String> = [
            "scenario",
            "rc",
            "rs",
            "n",
            "scheme",
            "variant",
            "reps",
            "coverage_mean",
            "coverage_ci95",
            "coverage_min",
            "coverage_max",
            "avg_move_mean",
            "avg_move_ci95",
            "messages_mean",
        ]
        .into_iter()
        .map(String::from)
        .collect();
        if self.spec.movement_summary {
            headers.push("moves_mean".to_string());
            headers.push("move_dist_mean".to_string());
        }
        if self.spec.dynamics.is_some() {
            headers.push("recovery_time_mean".to_string());
            headers.push("recovered_events".to_string());
            headers.push("coverage_dip_mean".to_string());
        }
        headers.push("connected_runs".to_string());
        let rows: Vec<Vec<String>> = self
            .cell_stats()
            .into_iter()
            .map(|s| {
                let mut row = vec![
                    self.spec.name.clone(),
                    format!("{:?}", s.radio.rc),
                    format!("{:?}", s.radio.rs),
                    s.n.to_string(),
                    s.scheme.name().to_string(),
                    s.variant_label.clone(),
                    s.coverage.count().to_string(),
                    format!("{:.6}", s.coverage.mean()),
                    format!("{:.6}", s.coverage.ci95_half_width()),
                    format!("{:.6}", s.coverage.min()),
                    format!("{:.6}", s.coverage.max()),
                    format!("{:.3}", s.avg_move.mean()),
                    format!("{:.3}", s.avg_move.ci95_half_width()),
                    format!("{:.1}", s.messages.mean()),
                ];
                if self.spec.movement_summary {
                    row.push(format!("{:.1}", s.moves.mean()));
                    row.push(format!("{:.3}", s.move_dist.mean()));
                }
                if self.spec.dynamics.is_some() {
                    row.push(format!("{:.3}", s.recovery_time.mean()));
                    row.push(s.recovery_time.count().to_string());
                    row.push(format!("{:.6}", s.coverage_dip.mean()));
                }
                row.push(s.connected_runs.to_string());
                row
            })
            .collect();
        to_csv(&headers, &rows)
    }

    /// Formats the ASCII report: one coverage table per radio
    /// combination (rows: sensor counts; columns: schemes), plus a
    /// moving-distance table.
    pub fn report(&self) -> String {
        let spec = &self.spec;
        let mut out = format!(
            "Scenario '{}' — field: {}, scatter: {}, {} runs ({} reps)\n",
            spec.name,
            spec.field.kind(),
            spec.scatter.kind(),
            self.records.len(),
            spec.repetitions,
        );
        if !spec.description.is_empty() {
            out.push_str(&format!("{}\n", spec.description));
        }
        let stats = self.cell_stats();
        let has_variants = !spec.variants.is_empty();
        for radio in &spec.radios {
            out.push_str(&format!("\n{radio}\n"));
            let mut headers = vec!["n".to_string()];
            if has_variants {
                headers.push("variant".to_string());
            }
            for scheme in &spec.schemes {
                headers.push(format!("{scheme} cov"));
            }
            for scheme in &spec.schemes {
                headers.push(format!("{scheme} move (m)"));
            }
            if spec.movement_summary {
                for scheme in &spec.schemes {
                    headers.push(format!("{scheme} cmd (m)"));
                }
            }
            if spec.dynamics.is_some() {
                for scheme in &spec.schemes {
                    headers.push(format!("{scheme} rec (s)"));
                }
            }
            let mut table = Table::new(headers);
            for &n in &spec.sensor_counts {
                for variant in 0..spec.variant_count() {
                    let mut row = vec![n.to_string()];
                    if has_variants {
                        row.push(spec.variant_label(variant).to_string());
                    }
                    let find = |scheme| {
                        stats.iter().find(|s| {
                            s.radio == *radio
                                && s.n == n
                                && s.scheme == scheme
                                && s.variant == variant
                        })
                    };
                    for &scheme in &spec.schemes {
                        row.push(find(scheme).map_or("-".into(), |s| fmt_pct(&s.coverage)));
                    }
                    for &scheme in &spec.schemes {
                        row.push(find(scheme).map_or("-".into(), |s| fmt_move(&s.avg_move)));
                    }
                    if spec.movement_summary {
                        for &scheme in &spec.schemes {
                            row.push(find(scheme).map_or("-".into(), |s| fmt_move(&s.move_dist)));
                        }
                    }
                    if spec.dynamics.is_some() {
                        for &scheme in &spec.schemes {
                            row.push(find(scheme).map_or("-".into(), |s| {
                                if s.recovery_time.is_empty() {
                                    "unrec".into()
                                } else {
                                    fmt_move(&s.recovery_time)
                                }
                            }));
                        }
                    }
                    table.row(row);
                }
            }
            out.push_str(&format!("{table}\n"));
        }
        out
    }
}

fn summary_json(s: &Summary) -> Json {
    Json::obj()
        .field("mean", s.mean())
        .field("ci95", s.ci95_half_width())
        .field(
            "min",
            if s.is_empty() {
                Json::Null
            } else {
                s.min().into()
            },
        )
        .field(
            "max",
            if s.is_empty() {
                Json::Null
            } else {
                s.max().into()
            },
        )
        .field("count", s.count())
}

/// `"52.3%"`, with a `±` half-width when there are repetitions.
fn fmt_pct(s: &Summary) -> String {
    if s.count() > 1 {
        format!(
            "{:.1}%±{:.1}",
            s.mean() * 100.0,
            s.ci95_half_width() * 100.0
        )
    } else {
        format!("{:.1}%", s.mean() * 100.0)
    }
}

/// `"384"`, with a `±` half-width when there are repetitions.
fn fmt_move(s: &Summary) -> String {
    if s.count() > 1 {
        format!("{:.0}±{:.0}", s.mean(), s.ci95_half_width())
    } else {
        format!("{:.0}", s.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FieldSpec, ScenarioSpec};
    use msn_deploy::SchemeKind;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::new("tiny")
            .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
            .with_sensor_counts(vec![12, 20])
            .with_radios(vec![(60.0, 40.0)])
            .with_duration(30.0)
            .with_coverage_cell(20.0)
            .with_repetitions(2)
    }

    #[test]
    fn runs_and_aggregates() {
        let result = BatchRunner::new().run(&tiny_spec()).unwrap();
        assert_eq!(result.records.len(), 2 * 2 * 2);
        let stats = result.cell_stats();
        assert_eq!(stats.len(), 2 * 2, "one aggregate per (n, scheme)");
        for s in &stats {
            assert_eq!(s.coverage.count(), 2);
            assert!(s.coverage.mean() > 0.0, "{} covered nothing", s.scheme);
            assert_eq!(s.runs.len(), 2);
        }
        assert_eq!(result.scheme_records(SchemeKind::Cpvf).len(), 4);
    }

    #[test]
    fn outputs_are_well_formed() {
        let result = RunConfig::new()
            .threads(1)
            .runner()
            .run(&tiny_spec())
            .unwrap();
        let json = result.to_json();
        assert!(json.contains("\"scenario\": \"tiny\""));
        assert!(json.contains("\"scheme\": \"CPVF\""));
        assert!(json.contains("\"runs\""));
        let csv = result.to_csv();
        assert_eq!(csv.lines().count(), 1 + 4, "header + one row per cell");
        assert!(csv.starts_with("scenario,rc,rs,n,scheme"));
        let report = result.report();
        assert!(report.contains("Scenario 'tiny'"));
        assert!(report.contains("CPVF cov"));
        assert!(report.contains('%'));
    }

    #[test]
    fn pinned_thread_counts_match_sequential_output() {
        let spec = tiny_spec();
        let sequential = RunConfig::new().threads(1).runner().run(&spec).unwrap();
        let pinned = RunConfig::new().threads(3).runner().run(&spec).unwrap();
        assert_eq!(sequential.to_json(), pinned.to_json());
    }

    #[test]
    #[allow(deprecated)] // the shims must keep working for one PR
    fn deprecated_with_shims_match_run_config() {
        let spec = tiny_spec().with_repetitions(1);
        let via_config = RunConfig::new().threads(2).runner().run(&spec).unwrap();
        let via_shims = BatchRunner::new()
            .with_threads(2)
            .with_profiling(false)
            .run(&spec)
            .unwrap();
        assert_eq!(via_config.to_json(), via_shims.to_json());
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let bad = tiny_spec().with_schemes(vec![]);
        assert!(BatchRunner::new().run(&bad).is_err());
    }

    #[test]
    fn resume_reproduces_uninterrupted_output_byte_for_byte() {
        let full_spec = tiny_spec();
        let full = RunConfig::new()
            .threads(1)
            .runner()
            .run(&full_spec)
            .unwrap();
        // "interrupt" after the first repetition: run the same spec
        // with fewer reps, persist, then resume at the full rep count
        let partial_spec = full_spec.clone().with_repetitions(1);
        let partial = RunConfig::new()
            .threads(1)
            .runner()
            .run(&partial_spec)
            .unwrap();
        let prior = BatchFile::parse(&partial.to_json()).unwrap();
        let resumed = RunConfig::new()
            .threads(1)
            .runner()
            .run_resuming(&full_spec, Some(&prior))
            .unwrap();
        assert_eq!(resumed.to_json(), full.to_json());
        assert_eq!(resumed.to_csv(), full.to_csv());
    }

    #[test]
    fn resume_actually_skips_cached_cells() {
        let spec = tiny_spec();
        let full = RunConfig::new().threads(1).runner().run(&spec).unwrap();
        let mut prior = BatchFile::parse(&full.to_json()).unwrap();
        // poison one cached record; if resume re-executed the cell the
        // poisoned value could not survive into the merged output
        prior.cells[0].1.get_mut(&0).unwrap().coverage = 0.123456789;
        let resumed = RunConfig::new()
            .threads(1)
            .runner()
            .run_resuming(&spec, Some(&prior))
            .unwrap();
        assert!(
            resumed.to_json().contains("0.123456789"),
            "cached record was re-executed instead of restored"
        );
    }

    #[test]
    fn resume_rejects_mismatched_seed_policy() {
        let spec = tiny_spec();
        let full = RunConfig::new().threads(1).runner().run(&spec).unwrap();
        let prior = BatchFile::parse(&full.to_json()).unwrap();
        let reseeded = spec.with_seed(4242);
        let err = RunConfig::new()
            .threads(1)
            .runner()
            .run_resuming(&reseeded, Some(&prior))
            .unwrap_err();
        assert!(err.0.contains("different spec"), "{}", err.0);
    }

    #[test]
    fn resume_rejects_edited_durations_and_params() {
        use msn_deploy::{FloorOverrides, SchemeOverrides};
        let spec = tiny_spec();
        let full = RunConfig::new().threads(1).runner().run(&spec).unwrap();
        let prior = BatchFile::parse(&full.to_json()).unwrap();
        // env seeds are untouched by these edits, but the digest
        // catches them: restored records would not reflect the edit
        let quickened = spec.clone().with_duration(10.0);
        assert!(BatchRunner::new()
            .run_resuming(&quickened, Some(&prior))
            .is_err());
        let reparam = spec.clone().with_params(SchemeOverrides {
            floor: FloorOverrides {
                ttl: Some(3),
                ..Default::default()
            },
            ..Default::default()
        });
        assert!(BatchRunner::new()
            .run_resuming(&reparam, Some(&prior))
            .is_err());
        // extending repetitions stays allowed
        assert!(BatchRunner::new()
            .run_resuming(&spec.with_repetitions(3), Some(&prior))
            .is_ok());
    }

    #[test]
    fn variant_sweep_runs_and_labels_cells() {
        use msn_deploy::{FloorOverrides, SchemeOverrides};
        let spec = ScenarioSpec::new("ttl-sweep")
            .with_schemes(vec![SchemeKind::Floor])
            .with_sensor_counts(vec![12])
            .with_duration(30.0)
            .with_coverage_cell(20.0)
            .with_variant("ttl-1", {
                SchemeOverrides {
                    floor: FloorOverrides {
                        ttl: Some(1),
                        ..Default::default()
                    },
                    ..Default::default()
                }
            })
            .with_variant("ttl-frac", {
                SchemeOverrides {
                    floor: FloorOverrides {
                        ttl_frac: Some(0.5),
                        ..Default::default()
                    },
                    ..Default::default()
                }
            });
        let result = RunConfig::new().threads(1).runner().run(&spec).unwrap();
        assert_eq!(result.records.len(), 2);
        let stats = result.cell_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].variant_label, "ttl-1");
        assert_eq!(stats[1].variant_label, "ttl-frac");
        let json = result.to_json();
        assert!(json.contains("\"variant\": \"ttl-1\""), "{json}");
        let csv = result.to_csv();
        assert!(csv.lines().next().unwrap().contains("variant"));
        let report = result.report();
        assert!(report.contains("ttl-1"), "{report}");
    }

    #[test]
    fn restored_records_fail_position_consumers_loudly() {
        let spec = tiny_spec();
        let full = RunConfig::new().threads(1).runner().run(&spec).unwrap();
        // fresh runs carry their final layouts
        for record in &full.records {
            assert_eq!(
                record.require_positions().unwrap().len(),
                record.cell.n,
                "fresh record must expose positions"
            );
        }
        // a fully-restored batch must refuse to hand out positions
        let prior = BatchFile::parse(&full.to_json()).unwrap();
        let resumed = RunConfig::new()
            .threads(1)
            .runner()
            .run_resuming(&spec, Some(&prior))
            .unwrap();
        let err = resumed.records[0].require_positions().unwrap_err();
        assert!(err.0.contains("no final positions"), "{}", err.0);
        assert!(err.0.contains("restored"), "{}", err.0);
    }

    #[test]
    fn resume_survives_mid_batch_holes_byte_identically() {
        // simulates resuming from a mid-batch checkpoint: records are
        // missing across schemes *within* a repetition, not only as
        // whole trailing repetitions
        let spec = tiny_spec();
        let full = RunConfig::new().threads(1).runner().run(&spec).unwrap();
        let mut prior = BatchFile::parse(&full.to_json()).unwrap();
        prior.cells[1].1.remove(&0);
        prior.cells[2].1.remove(&1);
        prior.cells.remove(3);
        let resumed = RunConfig::new()
            .threads(2)
            .runner()
            .run_resuming(&spec, Some(&prior))
            .unwrap();
        assert_eq!(resumed.to_json(), full.to_json());
    }

    #[test]
    fn randomized_specs_share_envs_and_stay_thread_invariant() {
        let spec = ScenarioSpec::new("rnd-groups")
            .with_field(FieldSpec::RandomObstacles(Default::default()))
            .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Opt])
            .with_sensor_counts(vec![12])
            .with_duration(20.0)
            .with_coverage_cell(25.0)
            .with_repetitions(3);
        let sequential = RunConfig::new().threads(1).runner().run(&spec).unwrap();
        let pooled = RunConfig::new().threads(3).runner().run(&spec).unwrap();
        assert_eq!(sequential.to_json(), pooled.to_json());
        // and resuming a partial randomized batch merges bit-exactly
        let partial = RunConfig::new()
            .threads(1)
            .runner()
            .run(&spec.clone().with_repetitions(1))
            .unwrap();
        let prior = BatchFile::parse(&partial.to_json()).unwrap();
        let resumed = RunConfig::new()
            .threads(2)
            .runner()
            .run_resuming(&spec, Some(&prior))
            .unwrap();
        assert_eq!(resumed.to_json(), sequential.to_json());
    }

    #[test]
    fn fixed_field_grid_cache_matches_uncached_environments() {
        // the shared-field path must reproduce build_environment's
        // scatter exactly (independent RNG streams)
        let spec = tiny_spec();
        let cells = spec.matrix();
        let (field, initial) = cells[0].build_environment(&spec);
        let scatter_only = cells[0].build_scatter(&spec, &field);
        assert_eq!(initial, scatter_only);
    }

    #[test]
    fn randomized_fields_vary_per_rep_but_not_per_scheme() {
        let spec = ScenarioSpec::new("rnd")
            .with_field(FieldSpec::RandomObstacles(Default::default()))
            .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
            .with_sensor_counts(vec![10])
            .with_duration(10.0)
            .with_coverage_cell(25.0)
            .with_repetitions(2);
        let cells = spec.matrix();
        let (f0, i0) = cells[0].build_environment(&spec);
        let (f1, i1) = cells[1].build_environment(&spec);
        // same rep, different scheme: identical environment
        assert_eq!(f0.obstacles().len(), f1.obstacles().len());
        assert_eq!(i0, i1);
        // different rep: different environment
        let (_, i2) = cells[2].build_environment(&spec);
        assert_ne!(i0, i2);
    }
}
