//! Parsed `batch.json` files: batch resume and regression diffing.
//!
//! [`BatchFile`] reads the JSON a [`crate::BatchRunner`] writes back
//! into per-cell, per-repetition records. Two consumers:
//!
//! * **resume** — `BatchRunner::run_resuming` skips matrix cells
//!   whose records are already present in a prior file (floats parse
//!   exactly from their shortest round-trippable form, so resumed
//!   output stays byte-identical);
//! * **diff** — [`diff_batches`] compares two files cell-by-cell
//!   within a relative tolerance, for regression tracking across
//!   refactors and machines.

use crate::json::Json;
use crate::runner::ScenarioError;
use msn_metrics::RecoveryStat;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One repetition's record as stored in `batch.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct FileRun {
    /// Repetition number.
    pub rep: usize,
    /// Environment seed the run recorded (checked against the spec's
    /// matrix on resume).
    pub env_seed: u64,
    /// Final coverage fraction.
    pub coverage: f64,
    /// Average moving distance (m).
    pub avg_move: f64,
    /// Maximum moving distance (m).
    pub max_move: f64,
    /// Total moving distance (m).
    pub total_move: f64,
    /// Total message transmissions.
    pub messages: u64,
    /// Whether the run ended fully connected.
    pub connected: bool,
    /// Time to reach 95 % of final coverage, if it converged.
    pub convergence_time: Option<f64>,
    /// Annotation flags.
    pub flags: Vec<String>,
    /// Movement actions (`world.moves`); 0 when the file was written
    /// without `movement_summary` enabled.
    pub moves: u64,
    /// Commanded travel distance (`world.move_dist`, m); 0.0 when the
    /// file was written without `movement_summary` enabled.
    pub move_dist: f64,
    /// Per-event recovery statistics; empty when the file was written
    /// without a `[dynamics]` schedule. Restored on resume so a
    /// resumed dynamic batch re-serializes byte-identically.
    pub recovery: Vec<RecoveryStat>,
}

/// Identity of one aggregate cell: radio ranges (as exact bit
/// patterns), sensor count, scheme and variant label.
pub type CellKey = (u64, u64, usize, String, String);

/// A parsed `batch.json`: header fields plus every cell's runs.
#[derive(Debug, Clone)]
pub struct BatchFile {
    /// Scenario name from the header.
    pub scenario: String,
    /// Base seed from the header.
    pub seed: u64,
    /// Fingerprint of the spec that produced the file (absent in
    /// files predating resume support); see
    /// `ScenarioSpec::resume_digest`.
    pub spec_digest: Option<String>,
    /// Total runs claimed by the header.
    pub total_runs: usize,
    /// Cells in file order, with their runs keyed by repetition.
    pub cells: Vec<(CellKey, BTreeMap<usize, FileRun>)>,
}

fn need<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, ScenarioError> {
    obj.get(key)
        .ok_or_else(|| ScenarioError(format!("batch.json: missing '{key}' in {ctx}")))
}

fn need_f64(obj: &Json, key: &str, ctx: &str) -> Result<f64, ScenarioError> {
    need(obj, key, ctx)?
        .as_f64()
        .ok_or_else(|| ScenarioError(format!("batch.json: '{key}' in {ctx} must be numeric")))
}

fn need_u64(obj: &Json, key: &str, ctx: &str) -> Result<u64, ScenarioError> {
    need(obj, key, ctx)?
        .as_u64()
        .ok_or_else(|| ScenarioError(format!("batch.json: '{key}' in {ctx} must be an integer")))
}

impl BatchFile {
    /// Parses the JSON document a `BatchRunner` wrote.
    pub fn parse(text: &str) -> Result<BatchFile, ScenarioError> {
        let root = Json::parse(text).map_err(|e| ScenarioError(e.to_string()))?;
        let scenario = need(&root, "scenario", "header")?
            .as_str()
            .ok_or_else(|| ScenarioError("batch.json: 'scenario' must be a string".into()))?
            .to_string();
        let seed = need_u64(&root, "seed", "header")?;
        let spec_digest = match root.get("spec_digest") {
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| {
                        ScenarioError("batch.json: 'spec_digest' must be a string".into())
                    })?
                    .to_string(),
            ),
            None => None,
        };
        let total_runs = need_u64(&root, "total_runs", "header")? as usize;
        let mut cells = Vec::new();
        let cell_items = need(&root, "cells", "header")?
            .as_array()
            .ok_or_else(|| ScenarioError("batch.json: 'cells' must be an array".into()))?;
        for cell in cell_items {
            let ctx = "cell";
            let rc = need_f64(cell, "rc", ctx)?;
            let rs = need_f64(cell, "rs", ctx)?;
            let n = need_u64(cell, "n", ctx)? as usize;
            let scheme = need(cell, "scheme", ctx)?
                .as_str()
                .ok_or_else(|| ScenarioError("batch.json: cell 'scheme' must be a string".into()))?
                .to_string();
            let variant = match cell.get("variant") {
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| {
                        ScenarioError("batch.json: cell 'variant' must be a string".into())
                    })?
                    .to_string(),
                None => String::new(),
            };
            let key: CellKey = (rc.to_bits(), rs.to_bits(), n, scheme, variant);
            let mut runs = BTreeMap::new();
            let run_items = need(cell, "runs", ctx)?
                .as_array()
                .ok_or_else(|| ScenarioError("batch.json: cell 'runs' must be an array".into()))?;
            for run in run_items {
                let ctx = "run";
                let rep = need_u64(run, "rep", ctx)? as usize;
                let convergence_time = match need(run, "convergence_time", ctx)? {
                    Json::Null => None,
                    v => Some(v.as_f64().ok_or_else(|| {
                        ScenarioError("batch.json: 'convergence_time' must be numeric".into())
                    })?),
                };
                let flags = match run.get("flags") {
                    None => Vec::new(),
                    Some(v) => v
                        .as_array()
                        .ok_or_else(|| {
                            ScenarioError("batch.json: run 'flags' must be an array".into())
                        })?
                        .iter()
                        .map(|f| {
                            f.as_str().map(str::to_string).ok_or_else(|| {
                                ScenarioError("batch.json: flags must be strings".into())
                            })
                        })
                        .collect::<Result<_, _>>()?,
                };
                let record = FileRun {
                    rep,
                    env_seed: need_u64(run, "env_seed", ctx)?,
                    coverage: need_f64(run, "coverage", ctx)?,
                    avg_move: need_f64(run, "avg_move", ctx)?,
                    max_move: need_f64(run, "max_move", ctx)?,
                    total_move: need_f64(run, "total_move", ctx)?,
                    messages: need_u64(run, "messages", ctx)?,
                    connected: need(run, "connected", ctx)?.as_bool().ok_or_else(|| {
                        ScenarioError("batch.json: 'connected' must be a boolean".into())
                    })?,
                    convergence_time,
                    flags,
                    // Optional: absent in files written without
                    // movement_summary (and in all pre-scale files).
                    moves: match run.get("moves") {
                        None => 0,
                        Some(v) => v.as_u64().ok_or_else(|| {
                            ScenarioError("batch.json: 'moves' must be an integer".into())
                        })?,
                    },
                    move_dist: match run.get("move_dist") {
                        None => 0.0,
                        Some(v) => v.as_f64().ok_or_else(|| {
                            ScenarioError("batch.json: 'move_dist' must be numeric".into())
                        })?,
                    },
                    // Optional: absent in files written without a
                    // [dynamics] schedule.
                    recovery: match run.get("recovery") {
                        None => Vec::new(),
                        Some(v) => v
                            .as_array()
                            .ok_or_else(|| {
                                ScenarioError("batch.json: 'recovery' must be an array".into())
                            })?
                            .iter()
                            .map(|s| {
                                let ctx = "recovery";
                                Ok(RecoveryStat {
                                    event_time: need_f64(s, "time", ctx)?,
                                    kind: need(s, "kind", ctx)?
                                        .as_str()
                                        .ok_or_else(|| {
                                            ScenarioError(
                                                "batch.json: recovery 'kind' must be a string"
                                                    .into(),
                                            )
                                        })?
                                        .to_string(),
                                    pre_coverage: need_f64(s, "pre_coverage", ctx)?,
                                    post_coverage: need_f64(s, "post_coverage", ctx)?,
                                    min_coverage: need_f64(s, "min_coverage", ctx)?,
                                    recovery_time: match need(s, "recovery_time", ctx)? {
                                        Json::Null => None,
                                        v => Some(v.as_f64().ok_or_else(|| {
                                            ScenarioError(
                                                "batch.json: 'recovery_time' must be numeric"
                                                    .into(),
                                            )
                                        })?),
                                    },
                                    post_move_dist: need_f64(s, "post_move_dist", ctx)?,
                                })
                            })
                            .collect::<Result<_, _>>()?,
                    },
                };
                if runs.insert(rep, record).is_some() {
                    return Err(ScenarioError(format!(
                        "batch.json: duplicate rep {rep} in a cell"
                    )));
                }
            }
            cells.push((key, runs));
        }
        Ok(BatchFile {
            scenario,
            seed,
            spec_digest,
            total_runs,
            cells,
        })
    }

    /// Looks up one repetition's record by cell coordinates.
    pub fn lookup(
        &self,
        rc: f64,
        rs: f64,
        n: usize,
        scheme: &str,
        variant: &str,
        rep: usize,
    ) -> Option<&FileRun> {
        let key = (rc.to_bits(), rs.to_bits(), n, scheme, variant);
        self.cells
            .iter()
            .find(|(k, _)| (k.0, k.1, k.2, k.3.as_str(), k.4.as_str()) == key)
            .and_then(|(_, runs)| runs.get(&rep))
    }

    /// Total number of run records in the file.
    pub fn run_count(&self) -> usize {
        self.cells.iter().map(|(_, runs)| runs.len()).sum()
    }
}

/// One matrix cell's comparison outcome — the unit the `--junit`
/// output renders as a testcase.
#[derive(Debug, Clone)]
pub struct CellDiff {
    /// Human-readable cell identity (`rc=.. rs=.. n=.. SCHEME`).
    pub label: String,
    /// Repetitions compared in this cell.
    pub compared: usize,
    /// Failure messages; empty means the cell matches.
    pub failures: Vec<String>,
}

/// Aggregate relative deltas of one metric over every compared
/// repetition.
#[derive(Debug, Clone)]
pub struct MetricSummary {
    /// Metric name.
    pub metric: &'static str,
    /// Repetitions the metric was compared on.
    pub compared: usize,
    /// Largest relative delta seen.
    pub max_rel: f64,
    /// Mean relative delta.
    pub mean_rel: f64,
    /// Where the largest delta occurred (cell label + rep).
    pub worst: Option<String>,
}

/// The outcome of comparing two batch files.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Human-readable difference lines, in file order.
    pub lines: Vec<String>,
    /// Number of compared (cell, rep) records present in both files.
    pub compared: usize,
    /// Number of out-of-tolerance or structural differences.
    pub mismatches: usize,
    /// Per-cell outcomes over the union of both files' cells.
    pub cells: Vec<CellDiff>,
    /// Per-metric delta summaries over every compared repetition.
    pub metrics: Vec<MetricSummary>,
}

impl DiffReport {
    /// Whether the files agree within tolerance.
    pub fn is_match(&self) -> bool {
        self.mismatches == 0
    }

    /// Formats the report: difference lines, the per-metric summary
    /// table, and a closing summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            let _ = writeln!(out, "{line}");
        }
        if self.compared > 0 {
            let _ = writeln!(
                out,
                "per-metric deltas over {} compared record(s):",
                self.compared
            );
            let _ = writeln!(
                out,
                "  {:<18} {:>8} {:>12} {:>12}  worst at",
                "metric", "records", "mean rel", "max rel"
            );
            for m in &self.metrics {
                let _ = writeln!(
                    out,
                    "  {:<18} {:>8} {:>12.3e} {:>12.3e}  {}",
                    m.metric,
                    m.compared,
                    m.mean_rel,
                    m.max_rel,
                    m.worst.as_deref().unwrap_or("-"),
                );
            }
        }
        let _ = writeln!(
            out,
            "{} record(s) compared, {} difference(s)",
            self.compared, self.mismatches
        );
        out
    }
}

/// Running aggregation behind one [`MetricSummary`] row.
struct MetricAcc {
    metric: &'static str,
    compared: usize,
    sum_rel: f64,
    max_rel: f64,
    worst: Option<String>,
}

impl MetricAcc {
    fn new(metric: &'static str) -> Self {
        MetricAcc {
            metric,
            compared: 0,
            sum_rel: 0.0,
            max_rel: 0.0,
            worst: None,
        }
    }

    fn record(&mut self, a: f64, b: f64, at: impl FnOnce() -> String) {
        let rel = if a == b {
            0.0
        } else {
            (a - b).abs() / a.abs().max(b.abs())
        };
        self.compared += 1;
        self.sum_rel += rel;
        if rel > self.max_rel {
            self.max_rel = rel;
            self.worst = Some(at());
        }
    }

    fn summary(self) -> MetricSummary {
        MetricSummary {
            metric: self.metric,
            compared: self.compared,
            max_rel: self.max_rel,
            mean_rel: if self.compared == 0 {
                0.0
            } else {
                self.sum_rel / self.compared as f64
            },
            worst: self.worst.filter(|_| self.max_rel > 0.0),
        }
    }
}

/// Relative closeness: `|a - b| <= tol · max(|a|, |b|)`. `tol = 0`
/// demands exact equality.
fn within(a: f64, b: f64, tol: f64) -> bool {
    a == b || (a - b).abs() <= tol * a.abs().max(b.abs())
}

fn key_label(key: &CellKey) -> String {
    let (rc_bits, rs_bits, n, scheme, variant) = key;
    let variant = if variant.is_empty() {
        String::new()
    } else {
        format!(" variant '{variant}'")
    };
    format!(
        "rc={} rs={} n={n} {scheme}{variant}",
        f64::from_bits(*rc_bits),
        f64::from_bits(*rs_bits),
    )
}

/// Compares two parsed batch files cell-by-cell and rep-by-rep within
/// a relative tolerance `tol` on every numeric metric (messages
/// included); `connected`, flags and the environment seeds compare
/// exactly. Cells or repetitions present on one side only are
/// differences.
pub fn diff_batches(a: &BatchFile, b: &BatchFile, tol: f64) -> DiffReport {
    let mut lines = Vec::new();
    let mut cells: Vec<CellDiff> = Vec::new();
    let mut compared = 0;
    let mut mismatches = 0;
    let mut accs = [
        MetricAcc::new("coverage"),
        MetricAcc::new("avg_move"),
        MetricAcc::new("max_move"),
        MetricAcc::new("total_move"),
        MetricAcc::new("messages"),
    ];
    let mut conv_acc = MetricAcc::new("convergence_time");
    if a.scenario != b.scenario {
        lines.push(format!(
            "note: comparing different scenarios '{}' vs '{}'",
            a.scenario, b.scenario
        ));
    }
    for (key, runs_a) in &a.cells {
        let label = key_label(key);
        let Some((_, runs_b)) = a_find(b, key) else {
            mismatches += 1;
            let msg = format!("cell missing from right file: {label}");
            lines.push(msg.clone());
            cells.push(CellDiff {
                label,
                compared: 0,
                failures: vec![msg],
            });
            continue;
        };
        let mut cell = CellDiff {
            label: label.clone(),
            compared: 0,
            failures: Vec::new(),
        };
        for (rep, ra) in runs_a {
            let Some(rb) = runs_b.get(rep) else {
                mismatches += 1;
                let msg = format!("rep {rep} missing from right file: {label}");
                lines.push(msg.clone());
                cell.failures.push(msg);
                continue;
            };
            compared += 1;
            cell.compared += 1;
            let mut diffs: Vec<String> = Vec::new();
            if ra.env_seed != rb.env_seed {
                diffs.push(format!("env_seed {} vs {}", ra.env_seed, rb.env_seed));
            }
            let pairs = [
                (ra.coverage, rb.coverage),
                (ra.avg_move, rb.avg_move),
                (ra.max_move, rb.max_move),
                (ra.total_move, rb.total_move),
                (ra.messages as f64, rb.messages as f64),
            ];
            for (acc, (va, vb)) in accs.iter_mut().zip(pairs) {
                acc.record(va, vb, || format!("{label} rep {rep}"));
                if !within(va, vb, tol) {
                    diffs.push(format!("{} {va} vs {vb}", acc.metric));
                }
            }
            match (ra.convergence_time, rb.convergence_time) {
                (Some(ta), Some(tb)) => {
                    conv_acc.record(ta, tb, || format!("{label} rep {rep}"));
                    if !within(ta, tb, tol) {
                        diffs.push(format!("convergence_time {ta} vs {tb}"));
                    }
                }
                (None, None) => {}
                (ta, tb) => diffs.push(format!("convergence_time {ta:?} vs {tb:?}")),
            }
            if ra.connected != rb.connected {
                diffs.push(format!("connected {} vs {}", ra.connected, rb.connected));
            }
            if ra.flags != rb.flags {
                diffs.push(format!("flags {:?} vs {:?}", ra.flags, rb.flags));
            }
            if !diffs.is_empty() {
                mismatches += 1;
                let msg = format!("{label} rep {rep}: {}", diffs.join(", "));
                lines.push(msg.clone());
                cell.failures.push(msg);
            }
        }
        // reps only on the right side
        for rep in runs_b.keys() {
            if !runs_a.contains_key(rep) {
                mismatches += 1;
                let msg = format!("rep {rep} missing from left file: {label}");
                lines.push(msg.clone());
                cell.failures.push(msg);
            }
        }
        cells.push(cell);
    }
    for (key, _) in &b.cells {
        if a_find(a, key).is_none() {
            mismatches += 1;
            let msg = format!("cell missing from left file: {}", key_label(key));
            lines.push(msg.clone());
            cells.push(CellDiff {
                label: key_label(key),
                compared: 0,
                failures: vec![msg],
            });
        }
    }
    DiffReport {
        lines,
        compared,
        mismatches,
        cells,
        metrics: accs
            .into_iter()
            .chain(std::iter::once(conv_acc))
            .map(MetricAcc::summary)
            .collect(),
    }
}

fn a_find<'a>(
    file: &'a BatchFile,
    key: &CellKey,
) -> Option<&'a (CellKey, BTreeMap<usize, FileRun>)> {
    file.cells.iter().find(|(k, _)| k == key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunConfig;
    use crate::spec::ScenarioSpec;
    use msn_deploy::SchemeKind;

    fn tiny_result_json() -> String {
        let spec = ScenarioSpec::new("difftest")
            .with_schemes(vec![SchemeKind::Opt])
            .with_sensor_counts(vec![10])
            .with_duration(10.0)
            .with_coverage_cell(30.0)
            .with_repetitions(2);
        RunConfig::new()
            .threads(1)
            .runner()
            .run(&spec)
            .unwrap()
            .to_json()
    }

    #[test]
    fn parse_reads_back_what_the_runner_wrote() {
        let json = tiny_result_json();
        let file = BatchFile::parse(&json).unwrap();
        assert_eq!(file.scenario, "difftest");
        assert_eq!(file.seed, 42);
        assert_eq!(file.total_runs, 2);
        assert_eq!(file.cells.len(), 1);
        assert_eq!(file.run_count(), 2);
        let run = file.lookup(60.0, 40.0, 10, "OPT", "", 0).expect("rep 0");
        assert!(run.coverage > 0.0);
        assert!(file.lookup(60.0, 40.0, 10, "OPT", "", 7).is_none());
        assert!(file.lookup(60.0, 40.0, 10, "FLOOR", "", 0).is_none());
    }

    #[test]
    fn identical_files_diff_clean() {
        let json = tiny_result_json();
        let a = BatchFile::parse(&json).unwrap();
        let b = BatchFile::parse(&json).unwrap();
        let report = diff_batches(&a, &b, 0.0);
        assert!(report.is_match(), "{}", report.render());
        assert_eq!(report.compared, 2);
    }

    #[test]
    fn tolerance_separates_noise_from_regression() {
        let json = tiny_result_json();
        let a = BatchFile::parse(&json).unwrap();
        let mut b = BatchFile::parse(&json).unwrap();
        let run = b.cells[0].1.get_mut(&0).unwrap();
        run.coverage *= 1.005; // 0.5 % drift
        let strict = diff_batches(&a, &b, 0.0);
        assert!(!strict.is_match());
        assert_eq!(strict.mismatches, 1);
        assert!(strict.render().contains("coverage"), "{}", strict.render());
        let lenient = diff_batches(&a, &b, 0.01);
        assert!(lenient.is_match(), "{}", lenient.render());
    }

    #[test]
    fn per_metric_summary_reports_max_and_mean() {
        let json = tiny_result_json();
        let a = BatchFile::parse(&json).unwrap();
        let mut b = BatchFile::parse(&json).unwrap();
        b.cells[0].1.get_mut(&0).unwrap().coverage *= 1.10; // +10 %
        b.cells[0].1.get_mut(&1).unwrap().coverage *= 1.02; // +2 %
        let report = diff_batches(&a, &b, 0.5);
        assert!(report.is_match(), "both drifts inside tolerance");
        let cov = report
            .metrics
            .iter()
            .find(|m| m.metric == "coverage")
            .expect("coverage summary");
        assert_eq!(cov.compared, 2);
        assert!((cov.max_rel - 0.10 / 1.10).abs() < 1e-9, "{}", cov.max_rel);
        assert!(cov.mean_rel > 0.0 && cov.mean_rel < cov.max_rel);
        assert!(cov.worst.as_deref().unwrap().contains("rep 0"));
        let mv = report
            .metrics
            .iter()
            .find(|m| m.metric == "avg_move")
            .expect("avg_move summary");
        assert_eq!(mv.max_rel, 0.0);
        assert!(mv.worst.is_none(), "no worst cell when nothing drifted");
        assert!(report.render().contains("per-metric deltas"));
    }

    #[test]
    fn cell_outcomes_cover_the_union_of_cells() {
        let json = tiny_result_json();
        let a = BatchFile::parse(&json).unwrap();
        let mut b = BatchFile::parse(&json).unwrap();
        // rename the cell on the right: one missing each way
        b.cells[0].0 .3 = "FLOOR".to_string();
        let report = diff_batches(&a, &b, 0.0);
        assert_eq!(report.cells.len(), 2);
        assert!(report.cells.iter().all(|c| !c.failures.is_empty()));
        let matched = diff_batches(&a, &a, 0.0);
        assert_eq!(matched.cells.len(), 1);
        assert!(matched.cells[0].failures.is_empty());
        assert_eq!(matched.cells[0].compared, 2);
    }

    #[test]
    fn structural_differences_are_reported() {
        let json = tiny_result_json();
        let a = BatchFile::parse(&json).unwrap();
        let mut b = BatchFile::parse(&json).unwrap();
        b.cells[0].1.remove(&1);
        let report = diff_batches(&a, &b, 0.5);
        assert!(!report.is_match());
        assert!(
            report.render().contains("rep 1 missing from right file"),
            "{}",
            report.render()
        );
        // and the reverse direction
        let report = diff_batches(&b, &a, 0.5);
        assert!(report.render().contains("rep 1 missing from left file"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(BatchFile::parse("not json").is_err());
        assert!(BatchFile::parse("{}").is_err());
        assert!(BatchFile::parse("{\"scenario\": \"x\", \"seed\": 1}").is_err());
    }
}
