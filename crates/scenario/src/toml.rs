//! A minimal TOML reader/writer.
//!
//! The build environment has no crates.io access, so scenario specs
//! are (de)serialized with this hand-rolled subset of TOML instead of
//! serde + the `toml` crate. Supported: `[table]` / `[a.b]` headers,
//! array-of-tables (`[[x]]`, including sub-tables of the latest
//! element via `[x.sub]`), `key = value` pairs, strings with
//! `\"`/`\\`/`\n`/`\t` escapes, integers, floats, booleans, and
//! (nested, possibly multi-line) arrays. Unsupported: inline tables,
//! datetimes, literal/multiline strings.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A positive integer above `i64::MAX` (an extension over the
    /// TOML spec, which caps integers at i64 — needed so `u64` seeds
    /// round-trip exactly).
    UInt(u64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<TomlValue>),
    /// A table (sorted keys, so writing is deterministic).
    Table(BTreeMap<String, TomlValue>),
}

/// A parse or schema error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError(pub String);

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TOML error: {}", self.0)
    }
}

impl std::error::Error for TomlError {}

fn err<T>(msg: impl Into<String>) -> Result<T, TomlError> {
    Err(TomlError(msg.into()))
}

impl TomlValue {
    /// Parses a document into its root [`TomlValue::Table`].
    pub fn parse(text: &str) -> Result<TomlValue, TomlError> {
        let mut root = BTreeMap::new();
        let mut path: Vec<String> = Vec::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((lineno, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let is_array = header.starts_with('[');
                let header = if is_array { &header[1..] } else { header };
                let header = if is_array {
                    let Some(h) = header.strip_suffix("]]") else {
                        return err(format!("line {}: unterminated table header", lineno + 1));
                    };
                    h
                } else {
                    let Some(h) = header.strip_suffix(']') else {
                        return err(format!("line {}: unterminated table header", lineno + 1));
                    };
                    h
                };
                path = header
                    .split('.')
                    .map(|p| p.trim().to_string())
                    .collect::<Vec<_>>();
                if path.iter().any(String::is_empty) {
                    return err(format!("line {}: empty table-name segment", lineno + 1));
                }
                if is_array {
                    // `[[x]]` appends a fresh element; later `[x.sub]`
                    // headers and `key = value` lines address it via
                    // the last-element rule in `table_at`.
                    let (last, parent_path) = path.split_last().expect("path is non-empty");
                    let parent = table_at(&mut root, parent_path, lineno + 1)?;
                    let entry = parent
                        .entry(last.clone())
                        .or_insert_with(|| TomlValue::Array(Vec::new()));
                    match entry {
                        TomlValue::Array(items) => {
                            items.push(TomlValue::Table(BTreeMap::new()));
                        }
                        _ => {
                            return err(format!(
                                "line {}: '{last}' is not an array of tables",
                                lineno + 1
                            ))
                        }
                    }
                } else {
                    // Materialize the table so empty tables round-trip.
                    table_at(&mut root, &path, lineno + 1)?;
                }
                continue;
            }
            let Some(eq) = line.find('=') else {
                return err(format!("line {}: expected 'key = value'", lineno + 1));
            };
            let key = line[..eq].trim().to_string();
            if key.is_empty() {
                return err(format!("line {}: empty key", lineno + 1));
            }
            let mut value_text = line[eq + 1..].trim().to_string();
            // Multi-line arrays: keep consuming lines until brackets balance.
            while bracket_depth(&value_text)? > 0 {
                let Some((_, next)) = lines.next() else {
                    return err(format!("line {}: unterminated array", lineno + 1));
                };
                value_text.push(' ');
                value_text.push_str(strip_comment(next).trim());
            }
            let value = parse_value(value_text.trim(), lineno + 1)?;
            let table = table_at(&mut root, &path, lineno + 1)?;
            if table.insert(key.clone(), value).is_some() {
                return err(format!("line {}: duplicate key '{key}'", lineno + 1));
            }
        }
        Ok(TomlValue::Table(root))
    }

    /// Serializes a root table as a TOML document (sorted keys;
    /// scalar/array pairs first, sub-tables as `[headers]` after).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a [`TomlValue::Table`] or a nested
    /// array contains a table.
    pub fn to_toml_string(&self) -> String {
        let TomlValue::Table(root) = self else {
            panic!("to_toml_string requires a root table");
        };
        let mut out = String::new();
        write_table(&mut out, root, &mut Vec::new());
        out
    }

    /// Member lookup on a table.
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        match self {
            TomlValue::Table(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Wraps a `u64`, picking [`TomlValue::Int`] when it fits so
    /// in-range values keep the standard representation.
    pub fn from_u64(v: u64) -> TomlValue {
        match i64::try_from(v) {
            Ok(i) => TomlValue::Int(i),
            Err(_) => TomlValue::UInt(v),
        }
    }

    /// The numeric payload as f64 (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            TomlValue::Float(f) => Some(*f),
            TomlValue::Int(i) => Some(*i as f64),
            TomlValue::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The integer payload as u64, if non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            TomlValue::Int(i) if *i >= 0 => Some(*i as u64),
            TomlValue::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The integer payload as usize, if non-negative.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            TomlValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[TomlValue]> {
        match self {
            TomlValue::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// Drops a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

/// Net `[`/`]` nesting of a partial value, respecting strings.
fn bracket_depth(text: &str) -> Result<i32, TomlError> {
    let mut depth = 0;
    let mut in_str = false;
    let mut escaped = false;
    for c in text.chars() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => escaped = false,
        }
    }
    if in_str {
        return err("unterminated string");
    }
    Ok(depth)
}

/// Walks (creating as needed) to the table at `path`. A segment that
/// names an array-of-tables descends into its *latest* element, per
/// the TOML rule that `[x.sub]` after `[[x]]` addresses the element
/// the `[[x]]` header opened.
fn table_at<'a>(
    root: &'a mut BTreeMap<String, TomlValue>,
    path: &[String],
    lineno: usize,
) -> Result<&'a mut BTreeMap<String, TomlValue>, TomlError> {
    let mut current = root;
    for seg in path {
        let entry = current
            .entry(seg.clone())
            .or_insert_with(|| TomlValue::Table(BTreeMap::new()));
        match entry {
            TomlValue::Table(map) => current = map,
            TomlValue::Array(items) => match items.last_mut() {
                Some(TomlValue::Table(map)) => current = map,
                _ => return err(format!("line {lineno}: '{seg}' is not an array of tables")),
            },
            _ => return err(format!("line {lineno}: '{seg}' is not a table")),
        }
    }
    Ok(current)
}

fn parse_value(text: &str, lineno: usize) -> Result<TomlValue, TomlError> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0;
    let value = parse_value_at(&chars, &mut pos, lineno)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return err(format!("line {lineno}: trailing characters after value"));
    }
    Ok(value)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while *pos < chars.len() && chars[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_value_at(chars: &[char], pos: &mut usize, lineno: usize) -> Result<TomlValue, TomlError> {
    skip_ws(chars, pos);
    let Some(&c) = chars.get(*pos) else {
        return err(format!("line {lineno}: missing value"));
    };
    match c {
        '"' => parse_string(chars, pos, lineno),
        '[' => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(']') => {
                        *pos += 1;
                        break;
                    }
                    Some(_) => {
                        items.push(parse_value_at(chars, pos, lineno)?);
                        skip_ws(chars, pos);
                        match chars.get(*pos) {
                            Some(',') => *pos += 1,
                            Some(']') => {}
                            _ => {
                                return err(format!("line {lineno}: expected ',' or ']' in array"))
                            }
                        }
                    }
                    None => return err(format!("line {lineno}: unterminated array")),
                }
            }
            Ok(TomlValue::Array(items))
        }
        _ => {
            let start = *pos;
            while *pos < chars.len() && !matches!(chars[*pos], ',' | ']') {
                *pos += 1;
            }
            let token: String = chars[start..*pos]
                .iter()
                .collect::<String>()
                .trim()
                .to_string();
            parse_scalar(&token, lineno)
        }
    }
}

fn parse_string(chars: &[char], pos: &mut usize, lineno: usize) -> Result<TomlValue, TomlError> {
    debug_assert_eq!(chars[*pos], '"');
    *pos += 1;
    let mut s = String::new();
    while let Some(&c) = chars.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(TomlValue::Str(s)),
            '\\' => {
                let Some(&esc) = chars.get(*pos) else {
                    return err(format!("line {lineno}: dangling escape"));
                };
                *pos += 1;
                s.push(match esc {
                    '"' => '"',
                    '\\' => '\\',
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => return err(format!("line {lineno}: unsupported escape '\\{other}'")),
                });
            }
            other => s.push(other),
        }
    }
    err(format!("line {lineno}: unterminated string"))
}

fn parse_scalar(token: &str, lineno: usize) -> Result<TomlValue, TomlError> {
    match token {
        "" => return err(format!("line {lineno}: empty value")),
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    let cleaned = token.replace('_', "");
    if !token.contains(['.', 'e', 'E']) {
        if let Ok(i) = cleaned.parse::<i64>() {
            return Ok(TomlValue::Int(i));
        }
        if let Ok(u) = cleaned.parse::<u64>() {
            return Ok(TomlValue::UInt(u));
        }
    }
    if let Ok(f) = cleaned.parse::<f64>() {
        if f.is_finite() {
            return Ok(TomlValue::Float(f));
        }
    }
    err(format!("line {lineno}: cannot parse value '{token}'"))
}

/// Whether a value must be written as `[[key]]` blocks rather than an
/// inline array (non-empty arrays whose elements are all tables).
fn is_array_of_tables(value: &TomlValue) -> bool {
    match value {
        TomlValue::Array(items) => {
            !items.is_empty() && items.iter().all(|i| matches!(i, TomlValue::Table(_)))
        }
        _ => false,
    }
}

fn write_table(out: &mut String, table: &BTreeMap<String, TomlValue>, path: &mut Vec<String>) {
    // Scalars and plain arrays first...
    for (key, value) in table {
        if !matches!(value, TomlValue::Table(_)) && !is_array_of_tables(value) {
            out.push_str(key);
            out.push_str(" = ");
            write_value(out, value);
            out.push('\n');
        }
    }
    // ...then sub-tables and arrays-of-tables with their headers.
    for (key, value) in table {
        if let TomlValue::Table(sub) = value {
            path.push(key.clone());
            if !out.is_empty() {
                out.push('\n');
            }
            out.push('[');
            out.push_str(&path.join("."));
            out.push_str("]\n");
            write_table(out, sub, path);
            path.pop();
        } else if is_array_of_tables(value) {
            let TomlValue::Array(items) = value else {
                unreachable!()
            };
            path.push(key.clone());
            for item in items {
                let TomlValue::Table(sub) = item else {
                    unreachable!()
                };
                if !out.is_empty() {
                    out.push('\n');
                }
                out.push_str("[[");
                out.push_str(&path.join("."));
                out.push_str("]]\n");
                write_table(out, sub, path);
            }
            path.pop();
        }
    }
}

fn write_value(out: &mut String, value: &TomlValue) {
    match value {
        TomlValue::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
        TomlValue::Int(i) => out.push_str(&i.to_string()),
        TomlValue::UInt(u) => out.push_str(&u.to_string()),
        TomlValue::Float(f) => {
            // `{:?}` keeps the shortest round-trippable form and always
            // marks floats as floats (`42.0`, not `42`).
            out.push_str(&format!("{f:?}"));
        }
        TomlValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        TomlValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_value(out, item);
            }
            out.push(']');
        }
        TomlValue::Table(_) => panic!("tables inside arrays are not supported"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let doc = r#"
# comment
name = "paper-field" # trailing comment
seed = 42
duration = 750.0
layouts = false
radios = [[20.0, 60.0], [60.0, 60.0]]
counts = [
    120,
    240,
]

[field]
kind = "paper"

[field.nested]
x = 1.5
"#;
        let v = TomlValue::parse(doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("paper-field"));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("duration").unwrap().as_f64(), Some(750.0));
        assert_eq!(v.get("layouts").unwrap().as_bool(), Some(false));
        let radios = v.get("radios").unwrap().as_array().unwrap();
        assert_eq!(radios.len(), 2);
        assert_eq!(radios[0].as_array().unwrap()[0].as_f64(), Some(20.0));
        let counts = v.get("counts").unwrap().as_array().unwrap();
        assert_eq!(counts.len(), 2);
        let field = v.get("field").unwrap();
        assert_eq!(field.get("kind").unwrap().as_str(), Some("paper"));
        assert_eq!(
            field.get("nested").unwrap().get("x").unwrap().as_f64(),
            Some(1.5)
        );
    }

    #[test]
    fn string_escapes_roundtrip() {
        let doc = "s = \"a\\\"b\\\\c\\nd\"\n";
        let v = TomlValue::parse(doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nd"));
        let written = v.to_toml_string();
        let again = TomlValue::parse(&written).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn writer_output_reparses_identically() {
        let doc = r#"
b = true
f = 0.1
i = -7
s = "hash # inside"
a = [1, 2, 3]
nested = [[1.0, 2.0], [3.0, 4.0]]

[t]
k = "v"
"#;
        let v = TomlValue::parse(doc).unwrap();
        let text = v.to_toml_string();
        assert_eq!(TomlValue::parse(&text).unwrap(), v);
        // deterministic output
        assert_eq!(text, TomlValue::parse(&text).unwrap().to_toml_string());
    }

    #[test]
    fn errors_are_reported() {
        assert!(TomlValue::parse("[unclosed").is_err());
        assert!(TomlValue::parse("x 1").is_err());
        assert!(TomlValue::parse("x = ").is_err());
        assert!(TomlValue::parse("x = [1, 2").is_err());
        assert!(TomlValue::parse("x = zebra").is_err());
        assert!(TomlValue::parse("x = 1\nx = 2").is_err());
        assert!(TomlValue::parse("[[aot").is_err());
        assert!(TomlValue::parse("x = 1\n[[x]]\ny = 2").is_err());
        assert!(TomlValue::parse("x = 1\n[x.sub]\ny = 2").is_err());
    }

    #[test]
    fn array_of_tables_roundtrip() {
        let doc = r#"
name = "variants-demo"

[[variants]]
label = "off"

[[variants]]
label = "one-step"
delta = 4.0

[variants.floor]
enable_blg = false

[[variants]]
label = "two-step"
"#;
        let v = TomlValue::parse(doc).unwrap();
        let items = v.get("variants").unwrap().as_array().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].get("label").unwrap().as_str(), Some("off"));
        assert_eq!(items[1].get("delta").unwrap().as_f64(), Some(4.0));
        // [variants.floor] binds to the latest [[variants]] element
        assert_eq!(
            items[1]
                .get("floor")
                .unwrap()
                .get("enable_blg")
                .unwrap()
                .as_bool(),
            Some(false)
        );
        assert_eq!(items[2].get("label").unwrap().as_str(), Some("two-step"));
        let text = v.to_toml_string();
        assert_eq!(TomlValue::parse(&text).unwrap(), v, "{text}");
        // deterministic output
        assert_eq!(text, TomlValue::parse(&text).unwrap().to_toml_string());
    }

    #[test]
    fn int_float_distinction_survives() {
        let v = TomlValue::parse("i = 3\nf = 3.0").unwrap();
        assert_eq!(v.get("i").unwrap(), &TomlValue::Int(3));
        assert_eq!(v.get("f").unwrap(), &TomlValue::Float(3.0));
        assert_eq!(v.get("i").unwrap().as_f64(), Some(3.0));
    }
}
