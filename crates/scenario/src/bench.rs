//! Parsed `BENCH_*.json` perf records and the bench-trend gate.
//!
//! `cargo bench -p msn-bench --bench kernels` exports every kernel
//! measurement as a machine-readable record. [`diff_bench`] compares
//! two such records within a relative tolerance so CI can hold each
//! commit against the committed baseline: `scenario bench-diff
//! BENCH_pr3.json BENCH_pr4.json --tol 0.75` prints per-kernel deltas
//! and exits nonzero when a kernel slowed down beyond tolerance or
//! vanished from the record (a silently missing artifact is a failure
//! too). Kernels new in the current record are reported but pass —
//! they become gated once the baseline is refreshed.

use crate::json::Json;
use crate::runner::ScenarioError;
use std::fmt::Write as _;

/// One kernel's measurement in a perf record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchKernel {
    /// Benchmark name.
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations of the measured pass.
    pub iters: u64,
}

/// A parsed `BENCH_*.json` perf record.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Record label (e.g. `BENCH_pr4`).
    pub record: String,
    /// Suite name (e.g. `kernels`).
    pub suite: String,
    /// Kernel measurements in file order.
    pub kernels: Vec<BenchKernel>,
}

impl BenchRecord {
    /// Parses the JSON document the kernels bench harness wrote.
    pub fn parse(text: &str) -> Result<BenchRecord, ScenarioError> {
        let root = Json::parse(text).map_err(|e| ScenarioError(e.to_string()))?;
        let field_str = |key: &str| -> Result<String, ScenarioError> {
            root.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ScenarioError(format!("bench record: missing string '{key}'")))
        };
        let record = field_str("record")?;
        let suite = field_str("suite")?;
        let mut kernels = Vec::new();
        let items = root
            .get("kernels")
            .and_then(Json::as_array)
            .ok_or_else(|| ScenarioError("bench record: missing 'kernels' array".into()))?;
        for item in items {
            let name = item
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| ScenarioError("bench record: kernel without 'name'".into()))?
                .to_string();
            let ns_per_iter = item
                .get("ns_per_iter")
                .and_then(Json::as_f64)
                .filter(|ns| ns.is_finite() && *ns >= 0.0)
                .ok_or_else(|| {
                    ScenarioError(format!(
                        "bench record: kernel '{name}' without 'ns_per_iter'"
                    ))
                })?;
            let iters = item.get("iters").and_then(Json::as_u64).ok_or_else(|| {
                ScenarioError(format!("bench record: kernel '{name}' without 'iters'"))
            })?;
            kernels.push(BenchKernel {
                name,
                ns_per_iter,
                iters,
            });
        }
        Ok(BenchRecord {
            record,
            suite,
            kernels,
        })
    }

    /// Looks up one kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&BenchKernel> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

/// A kernel's classification in a bench diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaStatus {
    /// Within tolerance of the baseline.
    Ok,
    /// Faster than the baseline beyond tolerance.
    Improved,
    /// Slower than the baseline beyond tolerance — fails the gate.
    Regression,
    /// Present only in the current record (not yet gated).
    New,
    /// Present only in the baseline — fails the gate (the artifact
    /// silently lost a kernel).
    Missing,
}

/// One kernel row of a [`BenchDiffReport`].
#[derive(Debug, Clone)]
pub struct KernelDelta {
    /// Kernel name.
    pub name: String,
    /// Baseline ns/iter, if the baseline has the kernel.
    pub baseline_ns: Option<f64>,
    /// Current ns/iter, if the current record has the kernel.
    pub current_ns: Option<f64>,
    /// `current / baseline` when both sides measured the kernel.
    pub ratio: Option<f64>,
    /// Gate classification.
    pub status: DeltaStatus,
}

/// The outcome of comparing two perf records.
#[derive(Debug, Clone)]
pub struct BenchDiffReport {
    /// Per-kernel rows, baseline order first, then new kernels.
    pub rows: Vec<KernelDelta>,
    /// The relative tolerance the gate ran with.
    pub tol: f64,
    /// Kernels that regressed beyond tolerance or went missing.
    pub failures: usize,
}

impl BenchDiffReport {
    /// Whether the current record passes the gate.
    pub fn is_match(&self) -> bool {
        self.failures == 0
    }

    /// Formats the per-kernel delta table plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<42} {:>14} {:>14} {:>8}  status",
            "kernel", "baseline", "current", "delta"
        );
        for row in &self.rows {
            let fmt_ns = |ns: Option<f64>| match ns {
                Some(ns) => format!("{ns:.1} ns"),
                None => "-".to_string(),
            };
            let delta = match row.ratio {
                Some(r) => format!("{:+.1}%", (r - 1.0) * 100.0),
                None => "-".to_string(),
            };
            let status = match row.status {
                DeltaStatus::Ok => "ok",
                DeltaStatus::Improved => "improved",
                DeltaStatus::Regression => "REGRESSION",
                DeltaStatus::New => "new",
                DeltaStatus::Missing => "MISSING",
            };
            let _ = writeln!(
                out,
                "{:<42} {:>14} {:>14} {:>8}  {status}",
                row.name,
                fmt_ns(row.baseline_ns),
                fmt_ns(row.current_ns),
                delta,
            );
        }
        let _ = writeln!(
            out,
            "{} kernel(s) compared, {} failure(s) beyond +{:.0}% tolerance",
            self.rows.len(),
            self.failures,
            self.tol * 100.0
        );
        out
    }

    /// GitHub workflow-command annotation lines (`::error::…`) for
    /// every gate failure, for inline rendering in the Actions UI.
    pub fn annotations(&self) -> Vec<String> {
        self.rows
            .iter()
            .filter_map(|row| match row.status {
                DeltaStatus::Regression => Some(format!(
                    "::error::kernel '{}' regressed: {:.1} ns -> {:.1} ns ({:+.1}% > +{:.0}% tolerance)",
                    row.name,
                    row.baseline_ns.unwrap_or(0.0),
                    row.current_ns.unwrap_or(0.0),
                    (row.ratio.unwrap_or(1.0) - 1.0) * 100.0,
                    self.tol * 100.0
                )),
                DeltaStatus::Missing => Some(format!(
                    "::error::kernel '{}' is in the baseline but missing from the current record",
                    row.name
                )),
                _ => None,
            })
            .collect()
    }
}

/// Compares `current` against `baseline` within relative tolerance
/// `tol`: a kernel regresses when `current > baseline * (1 + tol)`,
/// improves when `current < baseline / (1 + tol)`. Missing kernels
/// fail the gate; new kernels pass.
pub fn diff_bench(baseline: &BenchRecord, current: &BenchRecord, tol: f64) -> BenchDiffReport {
    let mut rows = Vec::new();
    let mut failures = 0;
    for base in &baseline.kernels {
        match current.kernel(&base.name) {
            Some(cur) => {
                let ratio = if base.ns_per_iter > 0.0 {
                    cur.ns_per_iter / base.ns_per_iter
                } else {
                    1.0
                };
                let status = if ratio > 1.0 + tol {
                    failures += 1;
                    DeltaStatus::Regression
                } else if ratio < 1.0 / (1.0 + tol) {
                    DeltaStatus::Improved
                } else {
                    DeltaStatus::Ok
                };
                rows.push(KernelDelta {
                    name: base.name.clone(),
                    baseline_ns: Some(base.ns_per_iter),
                    current_ns: Some(cur.ns_per_iter),
                    ratio: Some(ratio),
                    status,
                });
            }
            None => {
                failures += 1;
                rows.push(KernelDelta {
                    name: base.name.clone(),
                    baseline_ns: Some(base.ns_per_iter),
                    current_ns: None,
                    ratio: None,
                    status: DeltaStatus::Missing,
                });
            }
        }
    }
    for cur in &current.kernels {
        if baseline.kernel(&cur.name).is_none() {
            rows.push(KernelDelta {
                name: cur.name.clone(),
                baseline_ns: None,
                current_ns: Some(cur.ns_per_iter),
                ratio: None,
                status: DeltaStatus::New,
            });
        }
    }
    BenchDiffReport {
        rows,
        tol,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kernels: &[(&str, f64)]) -> BenchRecord {
        BenchRecord {
            record: "BENCH_test".into(),
            suite: "kernels".into(),
            kernels: kernels
                .iter()
                .map(|&(name, ns)| BenchKernel {
                    name: name.into(),
                    ns_per_iter: ns,
                    iters: 100,
                })
                .collect(),
        }
    }

    #[test]
    fn parse_round_trips_the_bench_harness_format() {
        let text = r#"{
            "record": "BENCH_pr4",
            "suite": "kernels",
            "kernels": [
                {"name": "disk_graph_build_240_rc60", "ns_per_iter": 29000.5, "iters": 6000}
            ]
        }"#;
        let rec = BenchRecord::parse(text).unwrap();
        assert_eq!(rec.record, "BENCH_pr4");
        assert_eq!(rec.suite, "kernels");
        assert_eq!(rec.kernels.len(), 1);
        let k = rec.kernel("disk_graph_build_240_rc60").unwrap();
        assert_eq!(k.ns_per_iter, 29000.5);
        assert_eq!(k.iters, 6000);
        assert!(rec.kernel("nope").is_none());
    }

    #[test]
    fn parse_rejects_malformed_records() {
        assert!(BenchRecord::parse("not json").is_err());
        assert!(BenchRecord::parse("{}").is_err());
        assert!(BenchRecord::parse(
            r#"{"record": "x", "suite": "kernels", "kernels": [{"name": "k"}]}"#
        )
        .is_err());
        // NaN / negative timings are refused, not gated against
        assert!(BenchRecord::parse(
            r#"{"record": "x", "suite": "kernels", "kernels": [{"name": "k", "ns_per_iter": -1.0, "iters": 1}]}"#
        )
        .is_err());
    }

    #[test]
    fn within_tolerance_passes_beyond_fails() {
        let base = record(&[("a", 100.0), ("b", 100.0), ("c", 100.0)]);
        let cur = record(&[("a", 120.0), ("b", 200.0), ("c", 40.0)]);
        let report = diff_bench(&base, &cur, 0.5);
        assert_eq!(report.failures, 1, "{}", report.render());
        assert!(!report.is_match());
        assert_eq!(report.rows[0].status, DeltaStatus::Ok);
        assert_eq!(report.rows[1].status, DeltaStatus::Regression);
        assert_eq!(report.rows[2].status, DeltaStatus::Improved);
        assert!(report.render().contains("REGRESSION"));
        let notes = report.annotations();
        assert_eq!(notes.len(), 1);
        assert!(notes[0].starts_with("::error::kernel 'b' regressed"));
        // looser gate lets the same drift through
        assert!(diff_bench(&base, &cur, 1.5).is_match());
    }

    #[test]
    fn missing_kernels_fail_new_kernels_pass() {
        let base = record(&[("a", 100.0), ("gone", 50.0)]);
        let cur = record(&[("a", 100.0), ("fresh", 10.0)]);
        let report = diff_bench(&base, &cur, 0.5);
        assert_eq!(report.failures, 1);
        let gone = report.rows.iter().find(|r| r.name == "gone").unwrap();
        assert_eq!(gone.status, DeltaStatus::Missing);
        let fresh = report.rows.iter().find(|r| r.name == "fresh").unwrap();
        assert_eq!(fresh.status, DeltaStatus::New);
        assert!(report
            .annotations()
            .iter()
            .any(|n| n.contains("missing from the current record")));
    }

    #[test]
    fn identical_records_diff_clean() {
        let base = record(&[("a", 100.0), ("b", 2.5)]);
        let report = diff_bench(&base, &base.clone(), 0.0);
        assert!(report.is_match(), "{}", report.render());
        assert!(report.annotations().is_empty());
        assert!(report.render().contains("0 failure(s)"));
    }
}
