//! The `scenario serve` daemon: batches as jobs behind a Unix socket.
//!
//! [`serve`] binds a Unix socket, opens (or creates) a content-addressed
//! [`JobStore`], re-queues whatever a previous daemon left unfinished,
//! and then runs two loops: an accept loop answering one framed
//! [`Request`] per connection (see [`crate::wire`]) and a single
//! executor thread draining the bounded submission FIFO onto the
//! persistent work-stealing pool via [`RunConfig`].
//!
//! Submissions dedup by construction — the job address is the spec
//! digest, so resubmitting an identical spec attaches to the existing
//! job (or returns the finished artifact) instead of queueing a second
//! execution; a failed digest is re-queued as a retry. Subscribed
//! clients receive the batch's [`ProgressEvent`] stream as NDJSON
//! lines scoped with the job digest, plus `job-state` lines on every
//! lifecycle transition; terminal states close the stream.
//!
//! Durability mirrors the CLI: checkpoints land in the job directory's
//! `batch.json`, so a SIGKILL'd daemon restarts, re-queues the job and
//! resumes from the last checkpoint — the finished artifact is
//! byte-identical to an uninterrupted `scenario run` of the same spec.

use crate::api::{
    job_event_line, job_state_line, ApiError, JobState, Request, Response, API_VERSION,
};
use crate::bench::diff_bench;
use crate::diff::{diff_batches, BatchFile};
use crate::jobstore::{write_atomic, BatchLock, JobStore};
use crate::profile::ProfileRecord;
use crate::progress::{ProgressEvent, ProgressSink};
use crate::runner::RunConfig;
use crate::spec::ScenarioSpec;
use crate::wire::{read_request, write_ndjson_header, write_response};
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How the daemon is wired up.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket path to listen on.
    pub socket: PathBuf,
    /// Root directory of the content-addressed job store.
    pub jobs_root: PathBuf,
    /// Worker threads per batch (`None`: the runner's default).
    pub threads: Option<usize>,
    /// Bounded submission FIFO capacity; further submissions are
    /// rejected with `queue-full`.
    pub queue_capacity: usize,
    /// Checkpoint interval in runs (0 disables mid-run durability).
    pub checkpoint_every: usize,
    /// Whether executed batches also write `profile.json`.
    pub profiling: bool,
}

impl ServeConfig {
    /// A config with the default queue capacity (64), checkpoint
    /// interval (25) and profiling on.
    pub fn new(socket: impl Into<PathBuf>, jobs_root: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            socket: socket.into(),
            jobs_root: jobs_root.into(),
            threads: None,
            queue_capacity: 64,
            checkpoint_every: 25,
            profiling: true,
        }
    }
}

struct Server {
    config: ServeConfig,
    store: JobStore,
    queue: Mutex<VecDeque<String>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    subscribers: Mutex<HashMap<String, Vec<UnixStream>>>,
}

/// Runs the daemon until a [`Request::Shutdown`] arrives. Blocks the
/// calling thread; in-flight batches finish before it returns (queued
/// but unstarted jobs stay `queued` and are recovered on the next
/// start).
pub fn serve(config: ServeConfig) -> Result<(), ApiError> {
    let listener = bind(&config.socket)?;
    let store = JobStore::open(&config.jobs_root)?;
    let server = Arc::new(Server {
        config,
        store,
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        subscribers: Mutex::new(HashMap::new()),
    });

    // a previous daemon's unfinished jobs resume first, in digest order
    let recovered = server.store.recover()?;
    if !recovered.is_empty() {
        eprintln!("serve: recovered {} unfinished job(s)", recovered.len());
        server.queue.lock().unwrap().extend(recovered);
        server.queue_cv.notify_all();
    }

    let executor = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || executor_loop(&server))
    };

    eprintln!(
        "serve: listening on {} (jobs under {})",
        server.config.socket.display(),
        server.config.jobs_root.display()
    );
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if server.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let server = Arc::clone(&server);
        handlers.retain(|h| !h.is_finished());
        handlers.push(std::thread::spawn(move || {
            handle_connection(&server, stream)
        }));
    }
    drop(listener);
    for handler in handlers {
        let _ = handler.join();
    }
    server.queue_cv.notify_all();
    let _ = executor.join();
    let _ = std::fs::remove_file(&server.config.socket);
    eprintln!("serve: stopped");
    Ok(())
}

/// Binds the socket, refusing if another daemon is live on it and
/// sweeping the stale file if not.
fn bind(socket: &PathBuf) -> Result<UnixListener, ApiError> {
    if socket.exists() {
        if UnixStream::connect(socket).is_ok() {
            return Err(ApiError::Conflict(format!(
                "{} already has a live `scenario serve`",
                socket.display()
            )));
        }
        // stale socket from a killed daemon
        std::fs::remove_file(socket)
            .map_err(|e| ApiError::Io(format!("cannot remove stale {}: {e}", socket.display())))?;
    }
    if let Some(parent) = socket.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)
            .map_err(|e| ApiError::Io(format!("cannot create {}: {e}", parent.display())))?;
    }
    UnixListener::bind(socket)
        .map_err(|e| ApiError::Io(format!("cannot bind {}: {e}", socket.display())))
}

/// Answers the single request of one connection.
fn handle_connection(server: &Arc<Server>, stream: UnixStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let request = match read_request(&mut reader) {
        Ok(request) => request,
        Err(error) => {
            // oversized / truncated / malformed frame: best-effort 400,
            // then drop the connection
            let _ = write_response(&mut &stream, &Response::Error { error });
            return;
        }
    };
    if let Request::Subscribe { job } = request {
        handle_subscribe(server, stream, &job);
        return;
    }
    let response = match answer(server, &request) {
        Ok(response) => response,
        Err(error) => Response::Error { error },
    };
    let _ = write_response(&mut &stream, &response);
}

/// Request dispatch for everything except `subscribe`.
fn answer(server: &Arc<Server>, request: &Request) -> Result<Response, ApiError> {
    match request {
        Request::Ping => Ok(Response::Pong {
            version: API_VERSION.to_string(),
        }),
        Request::Submit { spec_toml } => submit(server, spec_toml),
        Request::Status { job } => Ok(Response::Job {
            job: server
                .store
                .get(job)
                .ok_or_else(|| ApiError::NotFound(format!("job {job}")))?,
        }),
        Request::List => Ok(Response::Jobs {
            jobs: server.store.list(),
        }),
        Request::Artifact { job, name } => Ok(Response::Artifact {
            job: job.clone(),
            name: name.clone(),
            contents: server.store.artifact(job, name)?,
        }),
        Request::Diff { job_a, job_b, tol } => {
            let a = stored_batch(server, job_a)?;
            let b = stored_batch(server, job_b)?;
            let report = diff_batches(&a, &b, *tol);
            Ok(Response::Diff {
                matches: report.is_match(),
                tol: *tol,
                report: report.render(),
            })
        }
        Request::ProfileReport { job } => Ok(Response::Report {
            text: stored_profile(server, job)?.render_report(),
        }),
        Request::ProfileDiff { job_a, job_b, tol } => {
            let baseline = stored_profile(server, job_a)?.to_bench_record(job_a);
            let current = stored_profile(server, job_b)?.to_bench_record(job_b);
            let report = diff_bench(&baseline, &current, *tol);
            Ok(Response::BenchDiff {
                matches: report.is_match(),
                tol: *tol,
                baseline: job_a.clone(),
                current: job_b.clone(),
                report: report.render(),
                annotations: report.annotations(),
            })
        }
        Request::Shutdown => {
            server.shutdown.store(true, Ordering::SeqCst);
            server.queue_cv.notify_all();
            // poke the accept loop so it observes the flag
            let _ = UnixStream::connect(&server.config.socket);
            Ok(Response::ShuttingDown)
        }
        Request::Subscribe { .. } => Err(ApiError::Internal(
            "subscribe is handled on the streaming path".into(),
        )),
    }
}

fn stored_batch(server: &Server, job: &str) -> Result<BatchFile, ApiError> {
    let text = server.store.artifact(job, "batch.json")?;
    BatchFile::parse(&text).map_err(|e| ApiError::Internal(format!("job {job}: {e}")))
}

fn stored_profile(server: &Server, job: &str) -> Result<ProfileRecord, ApiError> {
    let text = server.store.artifact(job, "profile.json")?;
    ProfileRecord::parse(&text).map_err(|e| ApiError::Internal(format!("job {job}: {e}")))
}

/// Parses, validates and registers a submission. The queue mutex is
/// the submission critical section: dedup-check, capacity check,
/// create and enqueue happen atomically, so concurrent identical
/// submissions produce exactly one queued job.
fn submit(server: &Arc<Server>, spec_toml: &str) -> Result<Response, ApiError> {
    let spec =
        ScenarioSpec::from_toml_str(spec_toml).map_err(|e| ApiError::InvalidSpec(e.to_string()))?;
    spec.validate().map_err(ApiError::InvalidSpec)?;
    let digest = spec.job_digest();
    let mut queue = server.queue.lock().unwrap();
    if let Some(existing) = server.store.get(&digest) {
        if matches!(existing.state, JobState::Failed { .. }) {
            // a failed job retries on resubmission
            if queue.len() >= server.config.queue_capacity {
                return Err(ApiError::QueueFull {
                    capacity: server.config.queue_capacity,
                });
            }
            let job = server.store.transition(&digest, JobState::Queued)?;
            queue.push_back(digest);
            server.queue_cv.notify_one();
            return Ok(Response::Submitted {
                job,
                deduped: false,
                queue_depth: queue.len(),
            });
        }
        // identical digest already queued, running or done: attach
        return Ok(Response::Submitted {
            job: existing,
            deduped: true,
            queue_depth: queue.len(),
        });
    }
    if queue.len() >= server.config.queue_capacity {
        return Err(ApiError::QueueFull {
            capacity: server.config.queue_capacity,
        });
    }
    let job = server.store.create(&spec)?;
    queue.push_back(digest);
    server.queue_cv.notify_one();
    Ok(Response::Submitted {
        job,
        deduped: false,
        queue_depth: queue.len(),
    })
}

/// Registers a subscription stream after validating the job. The
/// subscribers lock is held across the state re-read so a terminal
/// broadcast can't slip between "state is live" and "stream is
/// registered" — either the broadcaster sees the stream, or this
/// thread sees the terminal state and writes the closing line itself.
fn handle_subscribe(server: &Arc<Server>, stream: UnixStream, job: &str) {
    if server.store.get(job).is_none() {
        let _ = write_response(
            &mut &stream,
            &Response::Error {
                error: ApiError::NotFound(format!("job {job}")),
            },
        );
        return;
    }
    if write_ndjson_header(&mut &stream).is_err() {
        return;
    }
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut subscribers = server.subscribers.lock().unwrap();
    let info = server.store.get(job).expect("job cannot disappear");
    if info.state.is_terminal() {
        drop(subscribers);
        let _ = writeln!(&mut &stream, "{}", job_state_line(job, &info.state));
        return;
    }
    subscribers.entry(job.to_string()).or_default().push(stream);
}

/// Sends one line to every subscriber of `job`, dropping streams whose
/// peer went away.
fn send_line(server: &Server, job: &str, line: &str) {
    let mut subscribers = server.subscribers.lock().unwrap();
    if let Some(streams) = subscribers.get_mut(job) {
        streams.retain_mut(|stream| writeln!(&mut &*stream, "{line}").is_ok());
    }
}

/// Broadcasts a lifecycle transition; terminal states also close and
/// deregister every subscriber.
fn broadcast_state(server: &Server, job: &str, state: &JobState) {
    send_line(server, job, &job_state_line(job, state));
    if state.is_terminal() {
        server.subscribers.lock().unwrap().remove(job);
    }
}

/// The single executor: drains the FIFO until shutdown.
fn executor_loop(server: &Arc<Server>) {
    loop {
        let next = {
            let mut queue = server.queue.lock().unwrap();
            loop {
                if server.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                if let Some(digest) = queue.pop_front() {
                    break Some(digest);
                }
                queue = server.queue_cv.wait(queue).unwrap();
            }
        };
        let Some(digest) = next else { return };
        execute(server, &digest);
    }
}

/// Runs one job to a terminal state, broadcasting along the way.
fn execute(server: &Arc<Server>, digest: &str) {
    let outcome = run_job(server, digest);
    let terminal = match outcome {
        Ok(()) => JobState::Done,
        Err(e) => JobState::Failed {
            error: e.to_string(),
        },
    };
    match server.store.transition(digest, terminal) {
        Ok(info) => {
            if let JobState::Failed { error } = &info.state {
                eprintln!("serve: job {digest} failed: {error}");
            } else {
                eprintln!("serve: job {digest} done");
            }
            broadcast_state(server, digest, &info.state);
        }
        Err(e) => eprintln!("serve: job {digest}: cannot record terminal state: {e}"),
    }
}

/// Executes the batch behind job `digest`: lock the job directory,
/// resume from any checkpoint, stream progress, write artifacts.
fn run_job(server: &Arc<Server>, digest: &str) -> Result<(), ApiError> {
    let info = server.store.transition(digest, JobState::Running)?;
    broadcast_state(server, digest, &info.state);
    let dir = server.store.job_dir(digest);
    let spec_text = server.store.artifact(digest, "spec.toml")?;
    let spec = ScenarioSpec::from_toml_str(&spec_text)
        .map_err(|e| ApiError::Internal(format!("stored spec of {digest}: {e}")))?;
    let _lock = BatchLock::acquire(&dir)?;
    let prior = match std::fs::read_to_string(dir.join("batch.json")) {
        Ok(text) => Some(
            BatchFile::parse(&text)
                .map_err(|e| ApiError::Internal(format!("checkpoint of {digest}: {e}")))?,
        ),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(ApiError::Io(format!("reading checkpoint of {digest}: {e}"))),
    };
    let mut config = RunConfig::new().profiling(server.config.profiling);
    if let Some(threads) = server.config.threads {
        config = config.threads(threads);
    }
    if server.config.checkpoint_every > 0 {
        config = config.checkpoint(dir.join("batch.json"), server.config.checkpoint_every);
    }
    let sink_server = Arc::clone(server);
    let sink_digest = digest.to_string();
    config = config.progress(ProgressSink::new(move |event| {
        match event {
            ProgressEvent::RunFinished { completed, .. } => {
                sink_server.store.note_progress(&sink_digest, *completed);
            }
            ProgressEvent::CheckpointWritten { runs, .. } => {
                // the durable mark doubles as the lifecycle transition
                let _ = sink_server
                    .store
                    .transition(&sink_digest, JobState::Checkpointed { runs: *runs });
            }
            _ => {}
        }
        send_line(
            &sink_server,
            &sink_digest,
            &job_event_line(&sink_digest, event),
        );
    }));
    let result = config
        .runner()
        .run_resuming(&spec, prior.as_ref())
        .map_err(|e| ApiError::Internal(e.to_string()))?;
    write_atomic(&dir.join("batch.json"), &result.to_json())?;
    write_atomic(&dir.join("batch.csv"), &result.to_csv())?;
    write_atomic(&dir.join("report.txt"), &result.report())?;
    if server.config.profiling {
        let record =
            ProfileRecord::from_batch(&result).map_err(|e| ApiError::Internal(e.to_string()))?;
        write_atomic(&dir.join("profile.json"), &record.to_json_string())?;
    }
    Ok(())
}
