//! Submission-burst load testing against a running daemon.
//!
//! [`load_test`] replays a burst of spec submissions — each with a
//! rotated base seed, so every submission is a distinct digest — from
//! N concurrent submitter threads, measuring per-request latency and
//! the queue depth the daemon reports back. The result is a
//! [`LoadTestReport`] with p50/p99/max submission latency, the
//! accept/dedup/reject split and the deepest queue observed: the
//! numbers that tell you whether the front door keeps up while the
//! executor grinds through the backlog.

use crate::api::{ApiError, LoadTestReport, Request, Response};
use crate::spec::ScenarioSpec;
use crate::wire::Client;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

/// How a load-test burst is shaped.
#[derive(Debug, Clone)]
pub struct LoadTestConfig {
    /// Daemon socket to submit against.
    pub socket: PathBuf,
    /// Template spec; submission `i` uses `seed + i`.
    pub spec: ScenarioSpec,
    /// Submissions in the burst.
    pub count: usize,
    /// Concurrent submitter threads.
    pub concurrency: usize,
}

/// One submission's outcome, tallied into the report.
enum Outcome {
    Accepted { queue_depth: usize },
    Deduped { queue_depth: usize },
    Rejected,
    Errored,
}

/// Replays the burst and aggregates the report. Individual submission
/// failures are tallied (`rejected`/`errors`), not propagated — the
/// burst itself only fails if a submitter thread panics.
pub fn load_test(config: &LoadTestConfig) -> Result<LoadTestReport, ApiError> {
    let concurrency = config.concurrency.max(1);
    let results: Mutex<Vec<(f64, Outcome)>> = Mutex::new(Vec::with_capacity(config.count));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..concurrency {
            let results = &results;
            let config = &config;
            scope.spawn(move || {
                let client = Client::new(&config.socket);
                // worker w submits every count-th spec starting at w
                for i in (worker..config.count).step_by(concurrency) {
                    let spec = config
                        .spec
                        .clone()
                        .with_seed(config.spec.seed.wrapping_add(i as u64));
                    let request = Request::Submit {
                        spec_toml: spec.to_toml_string(),
                    };
                    let sent = Instant::now();
                    let outcome = match client.request(&request) {
                        Ok(Response::Submitted {
                            deduped,
                            queue_depth,
                            ..
                        }) => {
                            if deduped {
                                Outcome::Deduped { queue_depth }
                            } else {
                                Outcome::Accepted { queue_depth }
                            }
                        }
                        Ok(Response::Error {
                            error: ApiError::QueueFull { .. },
                        }) => Outcome::Rejected,
                        Ok(_) | Err(_) => Outcome::Errored,
                    };
                    let latency_ms = sent.elapsed().as_secs_f64() * 1e3;
                    results.lock().unwrap().push((latency_ms, outcome));
                }
            });
        }
    });
    let wall_s = started.elapsed().as_secs_f64();
    let results = results.into_inner().unwrap();
    let mut latencies: Vec<f64> = results.iter().map(|(ms, _)| *ms).collect();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let (mut accepted, mut deduped, mut rejected, mut errors, mut max_depth) = (0, 0, 0, 0, 0);
    for (_, outcome) in &results {
        match outcome {
            Outcome::Accepted { queue_depth } => {
                accepted += 1;
                max_depth = max_depth.max(*queue_depth);
            }
            Outcome::Deduped { queue_depth } => {
                deduped += 1;
                max_depth = max_depth.max(*queue_depth);
            }
            Outcome::Rejected => rejected += 1,
            Outcome::Errored => errors += 1,
        }
    }
    Ok(LoadTestReport {
        specs: config.count,
        concurrency,
        accepted,
        deduped,
        rejected,
        errors,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        max_ms: latencies.last().copied().unwrap_or(0.0),
        max_queue_depth: max_depth,
        wall_s,
    })
}

/// Nearest-rank percentile over an ascending-sorted slice (0.0 for an
/// empty burst).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert_eq!(percentile(&[7.5], 50.0), 7.5);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
        assert_eq!(percentile(&[], 99.0), 0.0);
        // small bursts round up to the next observed sample
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 50.0), 2.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 99.0), 3.0);
    }
}
