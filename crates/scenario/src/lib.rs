//! Declarative scenario engine with a parallel batch runner.
//!
//! The paper's evaluation is a fixed set of figures over one field
//! layout; this crate turns that pattern into a reusable subsystem:
//!
//! * [`ScenarioSpec`] — a declarative, TOML-loadable description of an
//!   experiment: field geometry ([`FieldSpec`]: paper field, campus
//!   grid, corridor, disaster zone, random-obstacle generator),
//!   initial scatter ([`ScatterSpec`]), sensor-count sweep, scheme
//!   set, radio combinations, duration, repetitions and seed policy;
//! * [`BatchRunner`] — expands a spec into its run matrix and
//!   executes it in parallel via rayon with deterministic per-run
//!   seeding (seeds derive from the base seed and matrix coordinates,
//!   so results are byte-identical at any thread count);
//! * [`BatchResult`] — per-cell mean/CI aggregation via
//!   `msn-metrics`, exported as JSON, CSV and ASCII report tables.
//!
//! The `scenario` binary (`run` / `list` / `describe`) drives specs
//! from the bundled `scenarios/` directory, and `msn-bench`'s `fig9` /
//! `fig13` are thin clients of this engine.
//!
//! # Quickstart
//!
//! ```
//! use msn_deploy::SchemeKind;
//! use msn_scenario::{BatchRunner, ScenarioSpec};
//!
//! let spec = ScenarioSpec::new("quickstart")
//!     .with_schemes(vec![SchemeKind::Floor])
//!     .with_sensor_counts(vec![15])
//!     .with_duration(20.0)        // keep the doc test fast
//!     .with_coverage_cell(25.0);
//! let result = BatchRunner::new().run(&spec).unwrap();
//! assert_eq!(result.records.len(), 1);
//! assert!(result.records[0].coverage > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod bench;
mod diff;
mod jobstore;
mod json;
mod junit;
mod loadtest;
mod profile;
mod progress;
mod runner;
mod serve;
mod spec;
mod toml;
mod wire;

pub use api::{
    job_event_line, job_state_line, ApiError, JobInfo, JobState, LoadTestReport, Request, Response,
    SpecEntry, API_VERSION,
};
pub use bench::{diff_bench, BenchDiffReport, BenchKernel, BenchRecord, DeltaStatus, KernelDelta};
pub use diff::{diff_batches, BatchFile, CellDiff, CellKey, DiffReport, FileRun, MetricSummary};
pub use jobstore::{write_atomic, BatchLock, JobStore, ARTIFACTS};
pub use json::{Json, JsonError};
pub use junit::junit_xml;
pub use loadtest::{load_test, LoadTestConfig};
pub use profile::{ProfileCell, ProfileRecord};
pub use progress::{eta_seconds, ProgressEvent, ProgressSink};
pub use runner::{BatchResult, BatchRunner, CellStats, RunConfig, RunRecord, ScenarioError};
pub use serve::{serve, ServeConfig};
pub use spec::{
    derive_seed, FieldSpec, ParamVariant, RadioSpec, RunCell, ScatterSpec, ScenarioSpec,
};
pub use toml::{TomlError, TomlValue};
pub use wire::{
    read_request, read_response, reason_phrase, write_ndjson_header, write_request, write_response,
    Client, Subscription, MAX_BODY, MAX_HEADER,
};
