//! JUnit-style XML rendering of [`DiffReport`]s.
//!
//! CI systems (GitHub via `action-junit-report`, GitLab, Jenkins)
//! turn JUnit files into per-test annotations. `scenario diff --junit
//! <path>` writes one `<testcase>` per matrix cell, so a golden-output
//! gate reports *which cells* drifted instead of a bare nonzero exit.

use crate::diff::DiffReport;
use std::fmt::Write as _;

/// Escapes the five XML-special characters for use in attribute
/// values and text nodes.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders a diff report as a JUnit XML document: one testsuite named
/// `suite`, one testcase per matrix cell, a `<failure>` per drifted
/// cell carrying its difference lines.
pub fn junit_xml(report: &DiffReport, suite: &str) -> String {
    let failures = report
        .cells
        .iter()
        .filter(|c| !c.failures.is_empty())
        .count();
    let mut out = String::new();
    let _ = writeln!(out, r#"<?xml version="1.0" encoding="UTF-8"?>"#);
    let _ = writeln!(
        out,
        r#"<testsuite name="{}" tests="{}" failures="{failures}" errors="0" skipped="0">"#,
        esc(suite),
        report.cells.len(),
    );
    for cell in &report.cells {
        if cell.failures.is_empty() {
            let _ = writeln!(
                out,
                r#"  <testcase classname="{}" name="{}"/>"#,
                esc(suite),
                esc(&cell.label),
            );
        } else {
            let _ = writeln!(
                out,
                r#"  <testcase classname="{}" name="{}">"#,
                esc(suite),
                esc(&cell.label),
            );
            let _ = writeln!(
                out,
                r#"    <failure message="{} difference(s)">{}</failure>"#,
                cell.failures.len(),
                esc(&cell.failures.join("\n")),
            );
            let _ = writeln!(out, "  </testcase>");
        }
    }
    let _ = writeln!(out, "</testsuite>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{CellDiff, MetricSummary};

    fn report(cells: Vec<CellDiff>) -> DiffReport {
        DiffReport {
            lines: Vec::new(),
            compared: cells.iter().map(|c| c.compared).sum(),
            mismatches: cells.iter().map(|c| c.failures.len()).sum(),
            cells,
            metrics: Vec::<MetricSummary>::new(),
        }
    }

    #[test]
    fn clean_report_renders_passing_testcases() {
        let xml = junit_xml(
            &report(vec![CellDiff {
                label: "rc=60 rs=40 n=10 OPT".into(),
                compared: 2,
                failures: vec![],
            }]),
            "golden",
        );
        assert!(xml.starts_with(r#"<?xml version="1.0""#));
        assert!(xml.contains(r#"<testsuite name="golden" tests="1" failures="0""#));
        assert!(xml.contains(r#"<testcase classname="golden" name="rc=60 rs=40 n=10 OPT"/>"#));
        assert!(!xml.contains("<failure"));
    }

    #[test]
    fn drifted_cells_become_failures_with_escaped_payload() {
        let xml = junit_xml(
            &report(vec![
                CellDiff {
                    label: "rc=60 rs=40 n=10 OPT".into(),
                    compared: 1,
                    failures: vec!["coverage 0.5 vs 0.6".into(), "messages 3 vs 4".into()],
                },
                CellDiff {
                    label: "variant '<ttl&8>'".into(),
                    compared: 0,
                    failures: vec!["cell missing from right file".into()],
                },
            ]),
            "golden",
        );
        assert!(xml.contains(r#"tests="2" failures="2""#));
        assert!(xml.contains(r#"<failure message="2 difference(s)">"#));
        assert!(xml.contains("coverage 0.5 vs 0.6\nmessages 3 vs 4"));
        assert!(
            xml.contains("variant &apos;&lt;ttl&amp;8&gt;&apos;"),
            "{xml}"
        );
        assert!(!xml.contains("<ttl&8>"));
    }
}
