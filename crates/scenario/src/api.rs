//! The typed service API shared by the CLI and `scenario serve`.
//!
//! Every operation the `scenario` binary performs is expressed as a
//! [`Request`] and answered with a [`Response`]; the CLI subcommands
//! and the Unix-socket daemon are two thin transports over this one
//! vocabulary. Batches submitted to the daemon become jobs — a
//! [`JobInfo`] carrying a [`JobState`] that walks the lifecycle
//! `queued → running → checkpointed* → done | failed` with transitions
//! validated by [`JobState::can_transition`]. Failures are a closed
//! [`ApiError`] taxonomy (machine-readable [`ApiError::code`], HTTP
//! status via [`ApiError::http_status`]) instead of ad-hoc strings.
//!
//! All types serialize to the crate's deterministic [`Json`] value
//! (`{"request": ...}` / `{"response": ...}` discriminants) and parse
//! back losslessly; the round trip is what the wire protocol in
//! [`crate::wire`] frames and what `--json` output modes print.

use crate::json::Json;
use crate::progress::ProgressEvent;
use std::fmt;

/// Protocol version announced by [`Response::Pong`]. Bumped when the
/// request/response vocabulary changes incompatibly.
pub const API_VERSION: &str = "1";

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// The closed error taxonomy of the service API.
///
/// Every fallible operation returns one of these instead of an ad-hoc
/// `String`; [`ApiError::code`] gives the stable machine-readable
/// discriminant and [`ApiError::http_status`] the wire status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// The command line was malformed (unknown flag, missing operand).
    Usage(String),
    /// A scenario spec failed to parse or validate.
    InvalidSpec(String),
    /// A job digest, artifact or spec path does not exist.
    NotFound(String),
    /// The daemon's bounded submission queue is full.
    QueueFull {
        /// Queue capacity the daemon was started with.
        capacity: usize,
    },
    /// The operation conflicts with concurrent state (e.g. a second
    /// `scenario run` against a locked `batch.json`).
    Conflict(String),
    /// The peer violated the wire protocol (bad framing, bad JSON,
    /// oversized body).
    Protocol(String),
    /// An I/O operation failed.
    Io(String),
    /// An internal invariant broke (bug or corrupted store).
    Internal(String),
}

impl ApiError {
    /// Stable machine-readable error code.
    pub fn code(&self) -> &'static str {
        match self {
            ApiError::Usage(_) => "usage",
            ApiError::InvalidSpec(_) => "invalid-spec",
            ApiError::NotFound(_) => "not-found",
            ApiError::QueueFull { .. } => "queue-full",
            ApiError::Conflict(_) => "conflict",
            ApiError::Protocol(_) => "protocol",
            ApiError::Io(_) => "io",
            ApiError::Internal(_) => "internal",
        }
    }

    /// HTTP status code used when this error crosses the socket.
    pub fn http_status(&self) -> u16 {
        match self {
            ApiError::Usage(_) | ApiError::InvalidSpec(_) | ApiError::Protocol(_) => 400,
            ApiError::NotFound(_) => 404,
            ApiError::Conflict(_) => 409,
            ApiError::QueueFull { .. } => 429,
            ApiError::Io(_) | ApiError::Internal(_) => 500,
        }
    }

    /// Rebuilds the error from its `code` + display message (the
    /// inverse of [`Response::Error`]'s serialization).
    fn from_code(code: &str, message: &str, capacity: Option<usize>) -> ApiError {
        match code {
            "usage" => ApiError::Usage(message.to_string()),
            "invalid-spec" => ApiError::InvalidSpec(message.to_string()),
            "not-found" => ApiError::NotFound(message.to_string()),
            "queue-full" => ApiError::QueueFull {
                capacity: capacity.unwrap_or(0),
            },
            "conflict" => ApiError::Conflict(message.to_string()),
            "io" => ApiError::Io(message.to_string()),
            "internal" => ApiError::Internal(message.to_string()),
            _ => ApiError::Protocol(message.to_string()),
        }
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Usage(m)
            | ApiError::InvalidSpec(m)
            | ApiError::NotFound(m)
            | ApiError::Conflict(m)
            | ApiError::Protocol(m)
            | ApiError::Io(m)
            | ApiError::Internal(m) => f.write_str(m),
            ApiError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for ApiError {}

impl From<std::io::Error> for ApiError {
    fn from(e: std::io::Error) -> ApiError {
        ApiError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Job lifecycle
// ---------------------------------------------------------------------------

/// Where a job is in its lifecycle.
///
/// Legal transitions (enforced by [`JobState::can_transition`] and the
/// job store):
///
/// ```text
/// queued ──► running ──► checkpointed ──► done
///   ▲  │        │  ▲           │  │
///   │  └──────► │  └───────────┘  │   (checkpointed repeats)
///   │          failed ◄───────────┘
///   └── failed / running / checkpointed   (retry & restart recovery)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the daemon's FIFO.
    Queued,
    /// Executing on the worker pool.
    Running,
    /// Executing, with `runs` runs durable in `batch.json`.
    Checkpointed {
        /// Completed runs covered by the last checkpoint.
        runs: usize,
    },
    /// All runs finished and artifacts are on disk.
    Done,
    /// The batch errored; resubmitting the spec retries it.
    Failed {
        /// Human-readable failure reason.
        error: String,
    },
}

impl JobState {
    /// The stable kind discriminant (`"queued"`, `"running"`, ...).
    pub fn kind(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Checkpointed { .. } => "checkpointed",
            JobState::Done => "done",
            JobState::Failed { .. } => "failed",
        }
    }

    /// Whether the job has reached a final state.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done | JobState::Failed { .. })
    }

    /// Whether moving from `self` to `next` is a legal lifecycle edge.
    ///
    /// `running`/`checkpointed → queued` models daemon-restart
    /// recovery; `failed → queued` models an explicit retry. `done` is
    /// immutable.
    pub fn can_transition(&self, next: &JobState) -> bool {
        matches!(
            (self, next),
            (
                JobState::Queued,
                JobState::Running | JobState::Failed { .. }
            ) | (
                JobState::Running | JobState::Checkpointed { .. },
                JobState::Checkpointed { .. } | JobState::Done | JobState::Failed { .. },
            ) | (
                JobState::Running | JobState::Checkpointed { .. } | JobState::Failed { .. },
                JobState::Queued,
            )
        )
    }
}

/// A job's public description: identity, state and progress.
#[derive(Debug, Clone, PartialEq)]
pub struct JobInfo {
    /// Content address of the submitted spec ([`crate::ScenarioSpec::job_digest`]).
    pub digest: String,
    /// Scenario name from the spec.
    pub scenario: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Runs in the spec's full matrix.
    pub total_runs: usize,
    /// Runs finished so far (checkpoint-covered runs once persisted).
    pub completed_runs: usize,
}

impl JobInfo {
    /// The job as a JSON object — the schema of `job.json` in the
    /// store and of every job payload the daemon serves. The state is
    /// flattened: `"state"` plus optional `"runs"` (checkpointed) or
    /// `"error"` (failed).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj()
            .field("digest", self.digest.as_str())
            .field("scenario", self.scenario.as_str())
            .field("state", self.state.kind());
        if let JobState::Checkpointed { runs } = &self.state {
            obj = obj.field("runs", *runs);
        }
        if let JobState::Failed { error } = &self.state {
            obj = obj.field("error", error.as_str());
        }
        obj.field("total_runs", self.total_runs)
            .field("completed_runs", self.completed_runs)
    }

    /// Parses the [`JobInfo::to_json`] schema back.
    pub fn from_json(value: &Json) -> Result<JobInfo, ApiError> {
        let state = match need_str(value, "state", "job")?.as_str() {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "checkpointed" => JobState::Checkpointed {
                runs: need_usize(value, "runs", "job")?,
            },
            "done" => JobState::Done,
            "failed" => JobState::Failed {
                error: need_str(value, "error", "job")?,
            },
            other => {
                return Err(ApiError::Protocol(format!("unknown job state '{other}'")));
            }
        };
        Ok(JobInfo {
            digest: need_str(value, "digest", "job")?,
            scenario: need_str(value, "scenario", "job")?,
            state,
            total_runs: need_usize(value, "total_runs", "job")?,
            completed_runs: need_usize(value, "completed_runs", "job")?,
        })
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One operation a client asks of the service.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check; answered with [`Response::Pong`].
    Ping,
    /// Submit a scenario spec (TOML text) as a batch job.
    Submit {
        /// The spec document, exactly as a `scenarios/*.toml` file.
        spec_toml: String,
    },
    /// Fetch one job's [`JobInfo`].
    Status {
        /// Job digest.
        job: String,
    },
    /// List all jobs in the store.
    List,
    /// Stream NDJSON progress events for a job until it finishes.
    Subscribe {
        /// Job digest.
        job: String,
    },
    /// Fetch a stored artifact (`batch.json`, `report.txt`, ...).
    Artifact {
        /// Job digest.
        job: String,
        /// Artifact file name.
        name: String,
    },
    /// Diff the stored `batch.json` of two finished jobs.
    Diff {
        /// Baseline job digest.
        job_a: String,
        /// Candidate job digest.
        job_b: String,
        /// Mean-relative tolerance.
        tol: f64,
    },
    /// Render the profile report of a finished job.
    ProfileReport {
        /// Job digest.
        job: String,
    },
    /// Compare per-kernel timings of two finished jobs.
    ProfileDiff {
        /// Baseline job digest.
        job_a: String,
        /// Candidate job digest.
        job_b: String,
        /// Relative time tolerance.
        tol: f64,
    },
    /// Ask the daemon to finish in-flight work and exit.
    Shutdown,
}

impl Request {
    /// The request as a JSON object (`"request"` discriminates).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping => Json::obj().field("request", "ping"),
            Request::Submit { spec_toml } => Json::obj()
                .field("request", "submit")
                .field("spec_toml", spec_toml.as_str()),
            Request::Status { job } => Json::obj()
                .field("request", "status")
                .field("job", job.as_str()),
            Request::List => Json::obj().field("request", "list"),
            Request::Subscribe { job } => Json::obj()
                .field("request", "subscribe")
                .field("job", job.as_str()),
            Request::Artifact { job, name } => Json::obj()
                .field("request", "artifact")
                .field("job", job.as_str())
                .field("name", name.as_str()),
            Request::Diff { job_a, job_b, tol } => Json::obj()
                .field("request", "diff")
                .field("job_a", job_a.as_str())
                .field("job_b", job_b.as_str())
                .field("tol", *tol),
            Request::ProfileReport { job } => Json::obj()
                .field("request", "profile-report")
                .field("job", job.as_str()),
            Request::ProfileDiff { job_a, job_b, tol } => Json::obj()
                .field("request", "profile-diff")
                .field("job_a", job_a.as_str())
                .field("job_b", job_b.as_str())
                .field("tol", *tol),
            Request::Shutdown => Json::obj().field("request", "shutdown"),
        }
    }

    /// Parses a request object ([`Request::to_json`]'s inverse).
    pub fn from_json(value: &Json) -> Result<Request, ApiError> {
        match need_str(value, "request", "request")?.as_str() {
            "ping" => Ok(Request::Ping),
            "submit" => Ok(Request::Submit {
                spec_toml: need_str(value, "spec_toml", "submit")?,
            }),
            "status" => Ok(Request::Status {
                job: need_str(value, "job", "status")?,
            }),
            "list" => Ok(Request::List),
            "subscribe" => Ok(Request::Subscribe {
                job: need_str(value, "job", "subscribe")?,
            }),
            "artifact" => Ok(Request::Artifact {
                job: need_str(value, "job", "artifact")?,
                name: need_str(value, "name", "artifact")?,
            }),
            "diff" => Ok(Request::Diff {
                job_a: need_str(value, "job_a", "diff")?,
                job_b: need_str(value, "job_b", "diff")?,
                tol: need_f64(value, "tol", "diff")?,
            }),
            "profile-report" => Ok(Request::ProfileReport {
                job: need_str(value, "job", "profile-report")?,
            }),
            "profile-diff" => Ok(Request::ProfileDiff {
                job_a: need_str(value, "job_a", "profile-diff")?,
                job_b: need_str(value, "job_b", "profile-diff")?,
                tol: need_f64(value, "tol", "profile-diff")?,
            }),
            other => Err(ApiError::Protocol(format!("unknown request '{other}'"))),
        }
        .or_else(|e| {
            // `shutdown` falls through the match above only on typo'd
            // payload fields; re-check the discriminant before failing.
            if value.get("request").and_then(Json::as_str) == Some("shutdown") {
                Ok(Request::Shutdown)
            } else {
                Err(e)
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// One entry of `scenario list`: a spec file on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecEntry {
    /// Path of the spec file.
    pub path: String,
    /// Scenario name (or the parse error for broken files).
    pub scenario: String,
    /// Matrix size (0 when the file failed to parse).
    pub runs: usize,
    /// One-line human summary.
    pub summary: String,
}

impl SpecEntry {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("path", self.path.as_str())
            .field("scenario", self.scenario.as_str())
            .field("runs", self.runs)
            .field("summary", self.summary.as_str())
    }

    fn from_json(value: &Json) -> Result<SpecEntry, ApiError> {
        Ok(SpecEntry {
            path: need_str(value, "path", "spec entry")?,
            scenario: need_str(value, "scenario", "spec entry")?,
            runs: need_usize(value, "runs", "spec entry")?,
            summary: need_str(value, "summary", "spec entry")?,
        })
    }
}

/// The submission-burst statistics `scenario load-test` reports.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadTestReport {
    /// Specs submitted in the burst.
    pub specs: usize,
    /// Concurrent submitter threads.
    pub concurrency: usize,
    /// Submissions the daemon accepted as new jobs.
    pub accepted: usize,
    /// Submissions deduplicated onto an existing job.
    pub deduped: usize,
    /// Submissions rejected with `queue-full`.
    pub rejected: usize,
    /// Submissions that failed for any other reason.
    pub errors: usize,
    /// Median submission latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile submission latency in milliseconds.
    pub p99_ms: f64,
    /// Worst submission latency in milliseconds.
    pub max_ms: f64,
    /// Deepest queue depth observed in `submitted` responses.
    pub max_queue_depth: usize,
    /// Wall-clock seconds for the whole burst.
    pub wall_s: f64,
}

impl LoadTestReport {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("specs", self.specs)
            .field("concurrency", self.concurrency)
            .field("accepted", self.accepted)
            .field("deduped", self.deduped)
            .field("rejected", self.rejected)
            .field("errors", self.errors)
            .field("p50_ms", self.p50_ms)
            .field("p99_ms", self.p99_ms)
            .field("max_ms", self.max_ms)
            .field("max_queue_depth", self.max_queue_depth)
            .field("wall_s", self.wall_s)
    }

    fn from_json(value: &Json) -> Result<LoadTestReport, ApiError> {
        Ok(LoadTestReport {
            specs: need_usize(value, "specs", "load-test")?,
            concurrency: need_usize(value, "concurrency", "load-test")?,
            accepted: need_usize(value, "accepted", "load-test")?,
            deduped: need_usize(value, "deduped", "load-test")?,
            rejected: need_usize(value, "rejected", "load-test")?,
            errors: need_usize(value, "errors", "load-test")?,
            p50_ms: need_f64(value, "p50_ms", "load-test")?,
            p99_ms: need_f64(value, "p99_ms", "load-test")?,
            max_ms: need_f64(value, "max_ms", "load-test")?,
            max_queue_depth: need_usize(value, "max_queue_depth", "load-test")?,
            wall_s: need_f64(value, "wall_s", "load-test")?,
        })
    }

    /// Renders the human report table.
    pub fn render(&self) -> String {
        format!(
            "load-test: {} specs x {} submitters in {:.2}s\n\
             accepted {} | deduped {} | rejected {} | errors {}\n\
             submission latency p50 {:.2} ms | p99 {:.2} ms | max {:.2} ms\n\
             max queue depth {}\n",
            self.specs,
            self.concurrency,
            self.wall_s,
            self.accepted,
            self.deduped,
            self.rejected,
            self.errors,
            self.p50_ms,
            self.p99_ms,
            self.max_ms,
            self.max_queue_depth
        )
    }
}

/// One answer from the service (or from a CLI subcommand in `--json`
/// mode — both speak the same vocabulary).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The daemon is alive.
    Pong {
        /// Protocol version ([`API_VERSION`]).
        version: String,
    },
    /// A spec was submitted.
    Submitted {
        /// The job it maps to (new or existing).
        job: JobInfo,
        /// Whether an identical digest was already in the store.
        deduped: bool,
        /// Jobs waiting in the FIFO after this submission.
        queue_depth: usize,
    },
    /// One job's state.
    Job {
        /// The job.
        job: JobInfo,
    },
    /// Every job in the store, sorted by digest.
    Jobs {
        /// The jobs.
        jobs: Vec<JobInfo>,
    },
    /// A stored artifact's contents.
    Artifact {
        /// Job digest.
        job: String,
        /// Artifact file name.
        name: String,
        /// File contents (UTF-8).
        contents: String,
    },
    /// A batch diff result.
    Diff {
        /// Whether the batches match within tolerance.
        matches: bool,
        /// Tolerance used.
        tol: f64,
        /// Rendered report.
        report: String,
    },
    /// A benchmark diff result.
    BenchDiff {
        /// Whether all kernels are within tolerance.
        matches: bool,
        /// Tolerance used.
        tol: f64,
        /// Label of the baseline record (file path or job digest).
        baseline: String,
        /// Label of the current record (file path or job digest).
        current: String,
        /// Rendered report.
        report: String,
        /// Per-kernel regression/improvement annotations.
        annotations: Vec<String>,
    },
    /// A rendered text report (profile report, describe, ...).
    Report {
        /// The report text.
        text: String,
    },
    /// The daemon acknowledged [`Request::Shutdown`].
    ShuttingDown,
    /// `scenario run` finished a batch locally (CLI-only).
    RunFinished {
        /// The completed batch as a job description.
        job: JobInfo,
        /// Output directory holding the artifacts.
        out_dir: String,
        /// Rendered result table.
        report: String,
    },
    /// `scenario list` output (CLI-only).
    Specs {
        /// Spec files found.
        specs: Vec<SpecEntry>,
    },
    /// `scenario describe` output (CLI-only).
    Spec {
        /// Scenario name.
        scenario: String,
        /// Full-spec content address ([`crate::ScenarioSpec::job_digest`]).
        digest: String,
        /// Repetition-invariant digest guarding `--resume`.
        resume_digest: String,
        /// Matrix size.
        total_runs: usize,
        /// Canonical TOML of the spec.
        spec_toml: String,
    },
    /// `scenario load-test` statistics (CLI-only).
    LoadTest {
        /// The burst report.
        report: LoadTestReport,
    },
    /// The operation failed.
    Error {
        /// What went wrong.
        error: ApiError,
    },
}

impl Response {
    /// The response as a JSON object (`"response"` discriminates;
    /// errors flatten their code/message into the same object).
    pub fn to_json(&self) -> Json {
        match self {
            Response::Pong { version } => Json::obj()
                .field("response", "pong")
                .field("version", version.as_str()),
            Response::Submitted {
                job,
                deduped,
                queue_depth,
            } => Json::obj()
                .field("response", "submitted")
                .field("job", job.to_json())
                .field("deduped", *deduped)
                .field("queue_depth", *queue_depth),
            Response::Job { job } => Json::obj()
                .field("response", "job")
                .field("job", job.to_json()),
            Response::Jobs { jobs } => Json::obj().field("response", "jobs").field(
                "jobs",
                Json::Arr(jobs.iter().map(JobInfo::to_json).collect()),
            ),
            Response::Artifact {
                job,
                name,
                contents,
            } => Json::obj()
                .field("response", "artifact")
                .field("job", job.as_str())
                .field("name", name.as_str())
                .field("contents", contents.as_str()),
            Response::Diff {
                matches,
                tol,
                report,
            } => Json::obj()
                .field("response", "diff")
                .field("matches", *matches)
                .field("tol", *tol)
                .field("report", report.as_str()),
            Response::BenchDiff {
                matches,
                tol,
                baseline,
                current,
                report,
                annotations,
            } => Json::obj()
                .field("response", "bench-diff")
                .field("matches", *matches)
                .field("tol", *tol)
                .field("baseline", baseline.as_str())
                .field("current", current.as_str())
                .field("report", report.as_str())
                .field(
                    "annotations",
                    Json::Arr(annotations.iter().map(|a| Json::Str(a.clone())).collect()),
                ),
            Response::Report { text } => Json::obj()
                .field("response", "report")
                .field("text", text.as_str()),
            Response::ShuttingDown => Json::obj().field("response", "shutting-down"),
            Response::RunFinished {
                job,
                out_dir,
                report,
            } => Json::obj()
                .field("response", "run-finished")
                .field("job", job.to_json())
                .field("out_dir", out_dir.as_str())
                .field("report", report.as_str()),
            Response::Specs { specs } => Json::obj().field("response", "specs").field(
                "specs",
                Json::Arr(specs.iter().map(SpecEntry::to_json).collect()),
            ),
            Response::Spec {
                scenario,
                digest,
                resume_digest,
                total_runs,
                spec_toml,
            } => Json::obj()
                .field("response", "spec")
                .field("scenario", scenario.as_str())
                .field("digest", digest.as_str())
                .field("resume_digest", resume_digest.as_str())
                .field("total_runs", *total_runs)
                .field("spec_toml", spec_toml.as_str()),
            Response::LoadTest { report } => Json::obj()
                .field("response", "load-test")
                .field("report", report.to_json()),
            Response::Error { error } => {
                let mut obj = Json::obj()
                    .field("response", "error")
                    .field("code", error.code())
                    .field("message", error.to_string());
                if let ApiError::QueueFull { capacity } = error {
                    obj = obj.field("capacity", *capacity);
                }
                obj
            }
        }
    }

    /// Parses a response object ([`Response::to_json`]'s inverse).
    pub fn from_json(value: &Json) -> Result<Response, ApiError> {
        match need_str(value, "response", "response")?.as_str() {
            "pong" => Ok(Response::Pong {
                version: need_str(value, "version", "pong")?,
            }),
            "submitted" => Ok(Response::Submitted {
                job: JobInfo::from_json(need(value, "job", "submitted")?)?,
                deduped: need_bool(value, "deduped", "submitted")?,
                queue_depth: need_usize(value, "queue_depth", "submitted")?,
            }),
            "job" => Ok(Response::Job {
                job: JobInfo::from_json(need(value, "job", "job")?)?,
            }),
            "jobs" => {
                let items = need(value, "jobs", "jobs")?
                    .as_array()
                    .ok_or_else(|| ApiError::Protocol("'jobs' must be an array".into()))?;
                Ok(Response::Jobs {
                    jobs: items
                        .iter()
                        .map(JobInfo::from_json)
                        .collect::<Result<_, _>>()?,
                })
            }
            "artifact" => Ok(Response::Artifact {
                job: need_str(value, "job", "artifact")?,
                name: need_str(value, "name", "artifact")?,
                contents: need_str(value, "contents", "artifact")?,
            }),
            "diff" => Ok(Response::Diff {
                matches: need_bool(value, "matches", "diff")?,
                tol: need_f64(value, "tol", "diff")?,
                report: need_str(value, "report", "diff")?,
            }),
            "bench-diff" => {
                let items = need(value, "annotations", "bench-diff")?
                    .as_array()
                    .ok_or_else(|| ApiError::Protocol("'annotations' must be an array".into()))?;
                Ok(Response::BenchDiff {
                    matches: need_bool(value, "matches", "bench-diff")?,
                    tol: need_f64(value, "tol", "bench-diff")?,
                    baseline: need_str(value, "baseline", "bench-diff")?,
                    current: need_str(value, "current", "bench-diff")?,
                    report: need_str(value, "report", "bench-diff")?,
                    annotations: items
                        .iter()
                        .map(|a| {
                            a.as_str().map(str::to_string).ok_or_else(|| {
                                ApiError::Protocol("annotations must be strings".into())
                            })
                        })
                        .collect::<Result<_, _>>()?,
                })
            }
            "report" => Ok(Response::Report {
                text: need_str(value, "text", "report")?,
            }),
            "shutting-down" => Ok(Response::ShuttingDown),
            "run-finished" => Ok(Response::RunFinished {
                job: JobInfo::from_json(need(value, "job", "run-finished")?)?,
                out_dir: need_str(value, "out_dir", "run-finished")?,
                report: need_str(value, "report", "run-finished")?,
            }),
            "specs" => {
                let items = need(value, "specs", "specs")?
                    .as_array()
                    .ok_or_else(|| ApiError::Protocol("'specs' must be an array".into()))?;
                Ok(Response::Specs {
                    specs: items
                        .iter()
                        .map(SpecEntry::from_json)
                        .collect::<Result<_, _>>()?,
                })
            }
            "spec" => Ok(Response::Spec {
                scenario: need_str(value, "scenario", "spec")?,
                digest: need_str(value, "digest", "spec")?,
                resume_digest: need_str(value, "resume_digest", "spec")?,
                total_runs: need_usize(value, "total_runs", "spec")?,
                spec_toml: need_str(value, "spec_toml", "spec")?,
            }),
            "load-test" => Ok(Response::LoadTest {
                report: LoadTestReport::from_json(need(value, "report", "load-test")?)?,
            }),
            "error" => Ok(Response::Error {
                error: ApiError::from_code(
                    &need_str(value, "code", "error")?,
                    &need_str(value, "message", "error")?,
                    value.get("capacity").and_then(Json::as_usize),
                ),
            }),
            other => Err(ApiError::Protocol(format!("unknown response '{other}'"))),
        }
    }

    /// Whether this response reports a failed operation (drives the
    /// CLI exit code): errors, and diff results that don't match.
    pub fn indicates_failure(&self) -> bool {
        match self {
            Response::Error { .. } => true,
            Response::Diff { matches, .. } | Response::BenchDiff { matches, .. } => !matches,
            _ => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Subscription event lines
// ---------------------------------------------------------------------------

/// A batch progress event scoped to a job: the [`ProgressEvent`]
/// NDJSON schema with a leading `"job"` member, as streamed to
/// [`Request::Subscribe`] clients.
pub fn job_event_line(digest: &str, event: &ProgressEvent) -> String {
    let Json::Obj(members) = event.to_json() else {
        unreachable!("progress events serialize as objects");
    };
    let mut scoped = vec![("job".to_string(), Json::Str(digest.to_string()))];
    scoped.extend(members);
    Json::Obj(scoped).compact()
}

/// The `job-state` NDJSON line announcing a lifecycle transition on a
/// subscription stream (terminal states end the stream).
pub fn job_state_line(digest: &str, state: &JobState) -> String {
    let mut obj = Json::obj()
        .field("job", digest)
        .field("event", "job-state")
        .field("state", state.kind());
    if let JobState::Checkpointed { runs } = state {
        obj = obj.field("runs", *runs);
    }
    if let JobState::Failed { error } = state {
        obj = obj.field("error", error.as_str());
    }
    obj.compact()
}

// ---------------------------------------------------------------------------
// Field extraction helpers
// ---------------------------------------------------------------------------

fn need<'a>(value: &'a Json, key: &str, what: &str) -> Result<&'a Json, ApiError> {
    value
        .get(key)
        .ok_or_else(|| ApiError::Protocol(format!("{what}: missing field '{key}'")))
}

fn need_str(value: &Json, key: &str, what: &str) -> Result<String, ApiError> {
    need(value, key, what)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| ApiError::Protocol(format!("{what}: field '{key}' must be a string")))
}

fn need_usize(value: &Json, key: &str, what: &str) -> Result<usize, ApiError> {
    need(value, key, what)?
        .as_usize()
        .ok_or_else(|| ApiError::Protocol(format!("{what}: field '{key}' must be an integer")))
}

fn need_f64(value: &Json, key: &str, what: &str) -> Result<f64, ApiError> {
    need(value, key, what)?
        .as_f64()
        .ok_or_else(|| ApiError::Protocol(format!("{what}: field '{key}' must be a number")))
}

fn need_bool(value: &Json, key: &str, what: &str) -> Result<bool, ApiError> {
    need(value, key, what)?
        .as_bool()
        .ok_or_else(|| ApiError::Protocol(format!("{what}: field '{key}' must be a boolean")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let text = req.to_json().compact();
        let parsed = Request::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, req, "request round trip failed for {text}");
    }

    fn roundtrip_response(resp: Response) {
        let text = resp.to_json().pretty();
        let parsed = Response::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, resp, "response round trip failed for {text}");
    }

    fn job() -> JobInfo {
        JobInfo {
            digest: "00ff00ff00ff00ff".into(),
            scenario: "smoke".into(),
            state: JobState::Checkpointed { runs: 3 },
            total_runs: 8,
            completed_runs: 3,
        }
    }

    #[test]
    fn every_request_round_trips() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Submit {
            spec_toml: "name = \"x\"\n".into(),
        });
        roundtrip_request(Request::Status { job: "ab".into() });
        roundtrip_request(Request::List);
        roundtrip_request(Request::Subscribe { job: "ab".into() });
        roundtrip_request(Request::Artifact {
            job: "ab".into(),
            name: "batch.json".into(),
        });
        roundtrip_request(Request::Diff {
            job_a: "a".into(),
            job_b: "b".into(),
            tol: 1e-9,
        });
        roundtrip_request(Request::ProfileReport { job: "ab".into() });
        roundtrip_request(Request::ProfileDiff {
            job_a: "a".into(),
            job_b: "b".into(),
            tol: 0.25,
        });
        roundtrip_request(Request::Shutdown);
    }

    #[test]
    fn every_response_round_trips() {
        roundtrip_response(Response::Pong {
            version: API_VERSION.into(),
        });
        roundtrip_response(Response::Submitted {
            job: job(),
            deduped: true,
            queue_depth: 4,
        });
        roundtrip_response(Response::Job { job: job() });
        roundtrip_response(Response::Jobs {
            jobs: vec![
                job(),
                JobInfo {
                    state: JobState::Failed {
                        error: "boom".into(),
                    },
                    ..job()
                },
            ],
        });
        roundtrip_response(Response::Artifact {
            job: "ab".into(),
            name: "report.txt".into(),
            contents: "line one\nline \"two\"\n".into(),
        });
        roundtrip_response(Response::Diff {
            matches: false,
            tol: 1e-9,
            report: "MISMATCH\n".into(),
        });
        roundtrip_response(Response::BenchDiff {
            matches: true,
            tol: 0.25,
            baseline: "BENCH_pr7.json".into(),
            current: "BENCH_pr8.json".into(),
            report: "ok\n".into(),
            annotations: vec!["kernel a: +1%".into()],
        });
        roundtrip_response(Response::Report {
            text: "profile\n".into(),
        });
        roundtrip_response(Response::ShuttingDown);
        roundtrip_response(Response::RunFinished {
            job: job(),
            out_dir: "out".into(),
            report: "table\n".into(),
        });
        roundtrip_response(Response::Specs {
            specs: vec![SpecEntry {
                path: "scenarios/smoke.toml".into(),
                scenario: "smoke".into(),
                runs: 8,
                summary: "8 runs".into(),
            }],
        });
        roundtrip_response(Response::Spec {
            scenario: "smoke".into(),
            digest: "ff".into(),
            resume_digest: "ee".into(),
            total_runs: 8,
            spec_toml: "name = \"smoke\"\n".into(),
        });
        roundtrip_response(Response::LoadTest {
            report: LoadTestReport {
                specs: 50,
                concurrency: 8,
                accepted: 48,
                deduped: 1,
                rejected: 1,
                errors: 0,
                p50_ms: 0.8,
                p99_ms: 4.5,
                max_ms: 9.25,
                max_queue_depth: 12,
                wall_s: 1.5,
            },
        });
        for error in [
            ApiError::Usage("bad flag".into()),
            ApiError::InvalidSpec("no schemes".into()),
            ApiError::NotFound("job ff".into()),
            ApiError::QueueFull { capacity: 64 },
            ApiError::Conflict("locked".into()),
            ApiError::Protocol("bad frame".into()),
            ApiError::Io("EPIPE".into()),
            ApiError::Internal("bug".into()),
        ] {
            roundtrip_response(Response::Error { error });
        }
    }

    #[test]
    fn error_codes_and_statuses_are_stable() {
        assert_eq!(ApiError::Usage(String::new()).code(), "usage");
        assert_eq!(ApiError::Usage(String::new()).http_status(), 400);
        assert_eq!(ApiError::NotFound(String::new()).http_status(), 404);
        assert_eq!(ApiError::Conflict(String::new()).http_status(), 409);
        assert_eq!(ApiError::QueueFull { capacity: 1 }.http_status(), 429);
        assert_eq!(ApiError::Internal(String::new()).http_status(), 500);
        assert_eq!(
            ApiError::QueueFull { capacity: 64 }.to_string(),
            "submission queue full (capacity 64)"
        );
    }

    #[test]
    fn state_machine_edges() {
        use JobState::*;
        let ck = |n| Checkpointed { runs: n };
        let failed = || Failed { error: "x".into() };
        assert!(Queued.can_transition(&Running));
        assert!(Queued.can_transition(&failed()));
        assert!(!Queued.can_transition(&Done));
        assert!(Running.can_transition(&ck(1)));
        assert!(Running.can_transition(&Done));
        assert!(Running.can_transition(&Queued), "restart recovery");
        assert!(ck(1).can_transition(&ck(2)));
        assert!(ck(2).can_transition(&Done));
        assert!(ck(2).can_transition(&Queued), "restart recovery");
        assert!(failed().can_transition(&Queued), "retry");
        assert!(!Done.can_transition(&Queued), "done is immutable");
        assert!(!Done.can_transition(&Running));
        assert!(!failed().can_transition(&Running));
        assert!(Done.is_terminal() && failed().is_terminal());
        assert!(!Queued.is_terminal() && !ck(1).is_terminal());
    }

    #[test]
    fn malformed_payloads_are_protocol_errors() {
        let bad = Json::parse("{\"request\":\"submit\"}").unwrap();
        let err = Request::from_json(&bad).unwrap_err();
        assert_eq!(err.code(), "protocol");
        let unknown = Json::parse("{\"request\":\"frobnicate\"}").unwrap();
        assert!(Request::from_json(&unknown).is_err());
        let not_obj = Json::parse("[1,2]").unwrap();
        assert!(Response::from_json(&not_obj).is_err());
    }

    #[test]
    fn subscription_lines_are_schema_stable() {
        let line = job_event_line(
            "ab12",
            &ProgressEvent::CheckpointWritten {
                path: "jobs/ab12/batch.json".into(),
                runs: 4,
            },
        );
        assert_eq!(
            line,
            "{\"job\":\"ab12\",\"event\":\"checkpoint\",\
             \"path\":\"jobs/ab12/batch.json\",\"runs\":4}"
        );
        assert_eq!(
            job_state_line("ab12", &JobState::Done),
            "{\"job\":\"ab12\",\"event\":\"job-state\",\"state\":\"done\"}"
        );
        assert_eq!(
            job_state_line(
                "ab12",
                &JobState::Failed {
                    error: "boom".into()
                }
            ),
            "{\"job\":\"ab12\",\"event\":\"job-state\",\"state\":\"failed\",\"error\":\"boom\"}"
        );
        assert!(Json::parse(&line).is_ok());
    }
}
