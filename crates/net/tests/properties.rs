//! Property-based tests for the network substrate.

use msn_geom::Point;
use msn_net::{random_walk, DiskGraph, Parent, SpatialGrid, Tree};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn pts_strategy() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0..500.0f64, 0.0..500.0f64), 1..60)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #[test]
    fn disk_graph_edges_are_symmetric_and_within_rc(pts in pts_strategy(), rc in 10.0..200.0f64) {
        let g = DiskGraph::build(&pts, rc);
        for i in 0..pts.len() {
            for &j in g.neighbors(i) {
                prop_assert!(pts[i].dist(pts[j]) <= rc + 1e-6);
                prop_assert!(g.neighbors(j).contains(&i), "edge {i}-{j} must be symmetric");
            }
        }
    }

    #[test]
    fn spatial_grid_matches_brute_force(pts in pts_strategy(), r in 5.0..150.0f64) {
        let grid = SpatialGrid::build(&pts, r.max(1.0));
        let center = Point::new(250.0, 250.0);
        let mut fast = grid.within(&pts, center, r);
        fast.sort_unstable();
        let mut slow: Vec<usize> = (0..pts.len())
            .filter(|&i| pts[i].dist(center) <= r + 1e-9)
            .collect();
        slow.sort_unstable();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn components_partition_the_nodes(pts in pts_strategy(), rc in 10.0..200.0f64) {
        let g = DiskGraph::build(&pts, rc);
        let (labels, count) = g.components();
        prop_assert_eq!(labels.len(), pts.len());
        for &l in &labels {
            prop_assert!(l < count);
        }
        // nodes in the same component are mutually reachable
        if let Some(first) = labels.first() {
            let mask = g.reach_from([0]);
            for i in 0..pts.len() {
                prop_assert_eq!(mask[i], labels[i] == *first);
            }
        }
    }

    #[test]
    fn flood_reaches_exactly_base_component(pts in pts_strategy(), rc in 20.0..200.0f64) {
        let g = DiskGraph::build(&pts, rc);
        let base = Point::new(0.0, 0.0);
        let mask = g.flood_from_base(&pts, base, rc);
        // flooded nodes form a closed set: no edge from flooded to
        // unflooded, and unflooded nodes are not adjacent to the base
        for i in 0..pts.len() {
            if mask[i] {
                continue;
            }
            prop_assert!(pts[i].dist(base) > rc, "unflooded node adjacent to base");
            for &j in g.neighbors(i) {
                prop_assert!(!mask[j], "edge crosses the flood boundary");
            }
        }
    }

    #[test]
    fn random_walks_stay_on_edges(pts in pts_strategy(), rc in 30.0..200.0f64, seed in 0u64..100) {
        let g = DiskGraph::build(&pts, rc);
        let mut rng = SmallRng::seed_from_u64(seed);
        let walk = random_walk(&g, 0, 30, &mut rng);
        let mut prev = 0;
        for &v in &walk {
            prop_assert!(g.neighbors(prev).contains(&v));
            prev = v;
        }
    }

    #[test]
    fn chain_tree_invariants(n in 2usize..40) {
        let mut tree = Tree::new(n);
        tree.attach(0, Parent::Base);
        for i in 1..n {
            tree.attach(i, Parent::Node(i - 1));
        }
        prop_assert_eq!(tree.attached_count(), n);
        prop_assert_eq!(tree.ancestors(n - 1).len(), n - 1);
        prop_assert_eq!(tree.depth(n - 1), Some(n));
        prop_assert_eq!(tree.subtree(0).len(), n);
        prop_assert_eq!(tree.tree_hops(0, n - 1), n - 1);
        // any descendant as parent would loop
        for i in 0..n - 1 {
            prop_assert!(tree.would_create_loop(i, n - 1));
        }
    }

    #[test]
    fn star_tree_hops(n in 2usize..40) {
        let mut tree = Tree::new(n);
        tree.attach(0, Parent::Base);
        for i in 1..n {
            tree.attach(i, Parent::Node(0));
        }
        for i in 1..n {
            prop_assert_eq!(tree.tree_hops(0, i), 1);
            for j in 1..n {
                if i != j {
                    prop_assert_eq!(tree.tree_hops(i, j), 2);
                }
            }
        }
    }
}
