//! Property-based tests for the network substrate.

use msn_geom::Point;
use msn_net::{
    random_walk, AdjacencyTracker, ConnectivityTracker, DiskGraph, Parent, PointIndex, SpatialGrid,
    Tree, RANGE_EPS,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn pts_sized(count: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0..500.0f64, 0.0..500.0f64), count)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

fn pts_strategy() -> impl Strategy<Value = Vec<Point>> {
    pts_sized(1..60)
}

/// Fleet-size-parameterized point sets: the incremental kernels must
/// hold their oracle bit-identity at paper scale *and* at the scale
/// tier (where the shard layer's per-shard rebuild decisions kick
/// in). Large fleets are sampled more sparingly to keep the suite
/// fast; the `scale_tier_*` tests below cover 10k deterministically.
fn pts_fleet_strategy() -> impl Strategy<Value = Vec<Point>> {
    prop_oneof![
        4 => pts_sized(1..60),
        1 => pts_sized(120..200),
    ]
}

/// A move sequence: which sensor goes where, batched into query
/// rounds (several moves may land between two tracker queries).
fn moves_strategy() -> impl Strategy<Value = Vec<Vec<(usize, f64, f64)>>> {
    prop::collection::vec(
        prop::collection::vec((0usize..60, 0.0..500.0f64, 0.0..500.0f64), 1..8),
        1..12,
    )
}

/// Churn rounds for the dynamic-world tier: each op is
/// `(kind, sensor, x, y)` where kind 0 moves the sensor on-field,
/// kind 1 fails it (the `World::remove_sensor` park teleport) and
/// kind 2 revives it at `(x, y)` (`World::insert_sensor`).
fn churn_strategy() -> impl Strategy<Value = Vec<Vec<(u8, usize, f64, f64)>>> {
    prop::collection::vec(
        prop::collection::vec((0u8..3, 0usize..60, 0.0..500.0f64, 0.0..500.0f64), 1..8),
        1..10,
    )
}

/// The tracker must agree with the build + flood oracle bit for bit
/// after every query round.
fn assert_tracker_matches_oracle(
    pts: &[Point],
    base: Point,
    rc: f64,
    tracker: &mut ConnectivityTracker,
) {
    let g = DiskGraph::build(pts, rc);
    assert_eq!(tracker.connected_mask(), g.flood_from_base(pts, base, rc));
    assert_eq!(tracker.hop_distances(), g.base_hop_distances(pts, base, rc));
}

proptest! {
    #[test]
    fn disk_graph_edges_are_symmetric_and_within_rc(pts in pts_strategy(), rc in 10.0..200.0f64) {
        let g = DiskGraph::build(&pts, rc);
        for i in 0..pts.len() {
            for &j in g.neighbors(i) {
                prop_assert!(pts[i].dist(pts[j]) <= rc + 1e-6);
                prop_assert!(g.neighbors(j).contains(&i), "edge {i}-{j} must be symmetric");
            }
        }
    }

    #[test]
    fn spatial_grid_matches_brute_force(pts in pts_strategy(), r in 5.0..150.0f64) {
        let grid = SpatialGrid::build(&pts, r.max(1.0));
        let center = Point::new(250.0, 250.0);
        let mut fast = grid.within(&pts, center, r);
        fast.sort_unstable();
        let mut slow: Vec<usize> = (0..pts.len())
            .filter(|&i| pts[i].dist(center) <= r + 1e-9)
            .collect();
        slow.sort_unstable();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn components_partition_the_nodes(pts in pts_strategy(), rc in 10.0..200.0f64) {
        let g = DiskGraph::build(&pts, rc);
        let (labels, count) = g.components();
        prop_assert_eq!(labels.len(), pts.len());
        for &l in &labels {
            prop_assert!(l < count);
        }
        // nodes in the same component are mutually reachable
        if let Some(first) = labels.first() {
            let mask = g.reach_from([0]);
            for i in 0..pts.len() {
                prop_assert_eq!(mask[i], labels[i] == *first);
            }
        }
    }

    #[test]
    fn flood_reaches_exactly_base_component(pts in pts_strategy(), rc in 20.0..200.0f64) {
        let g = DiskGraph::build(&pts, rc);
        let base = Point::new(0.0, 0.0);
        let mask = g.flood_from_base(&pts, base, rc);
        // flooded nodes form a closed set: no edge from flooded to
        // unflooded, and unflooded nodes are not adjacent to the base
        for i in 0..pts.len() {
            if mask[i] {
                continue;
            }
            prop_assert!(pts[i].dist(base) > rc, "unflooded node adjacent to base");
            for &j in g.neighbors(i) {
                prop_assert!(!mask[j], "edge crosses the flood boundary");
            }
        }
    }

    #[test]
    fn random_walks_stay_on_edges(pts in pts_strategy(), rc in 30.0..200.0f64, seed in 0u64..100) {
        let g = DiskGraph::build(&pts, rc);
        let mut rng = SmallRng::seed_from_u64(seed);
        let walk = random_walk(&g, 0, 30, &mut rng);
        let mut prev = 0;
        for &v in &walk {
            prop_assert!(g.neighbors(prev).contains(&v));
            prev = v;
        }
    }

    #[test]
    fn point_index_matches_grid_oracle_in_order(
        pts in pts_fleet_strategy(),
        moves in moves_strategy(),
        cell in 5.0..150.0f64,
        r in 5.0..150.0f64,
    ) {
        // Bit-identity with SpatialGrid::build — the same indices in
        // the same order, after every batch of moves (off-field
        // coordinates included via the move strategy below).
        let mut pts = pts;
        let mut index = PointIndex::new(&pts, cell);
        for round in moves {
            for (i, x, y) in round {
                let i = i % pts.len();
                // fold some moves off-field / negative
                pts[i] = Point::new(x - 100.0, y - 100.0);
                index.set_point(i, pts[i]);
            }
            let grid = SpatialGrid::build(&pts, cell);
            for q in 0..pts.len() {
                prop_assert_eq!(
                    index.neighbors_within(q, r),
                    grid.neighbors(&pts, q, r),
                    "point {} radius {} cell {}", q, r, cell
                );
            }
        }
    }

    #[test]
    fn point_index_grid_order_emulates_any_cell(
        pts in pts_strategy(),
        moves in moves_strategy(),
        cell in 5.0..150.0f64,
        order_cell in 1.0..200.0f64,
        r in 5.0..100.0f64,
    ) {
        // The grid-order query must reproduce the scan order of a
        // grid built at a *different* cell size — what keeps the
        // absorb-scan tie-breaks byte-identical after migration.
        let mut pts = pts;
        let mut index = PointIndex::new(&pts, cell);
        for round in moves {
            for (i, x, y) in round {
                let i = i % pts.len();
                pts[i] = Point::new(x, y);
                index.set_point(i, pts[i]);
            }
            let grid = SpatialGrid::build(&pts, order_cell);
            for q in 0..pts.len() {
                prop_assert_eq!(
                    index.neighbors_within_grid_order(q, r, order_cell),
                    grid.neighbors(&pts, q, r),
                    "point {} radius {} order cell {}", q, r, order_cell
                );
            }
        }
    }

    #[test]
    fn point_index_cell_boundaries_and_epsilon_pairs(
        cell in 2.0..40.0f64,
        eps_idx in 0usize..7,
    ) {
        // Points parked exactly on cell boundaries, and pairs sitting
        // inside/outside the RANGE_EPS slack window: index and fresh
        // grid must agree on both membership and order.
        let eps_mult = [-3.0f64, -1.0, -0.5, 0.0, 0.5, 1.0, 3.0][eps_idx];
        let r = 2.0 * cell; // radius past the cell size stays exact
        let mut pts = vec![
            Point::new(0.0, 0.0),
            Point::new(cell, 0.0),           // exactly on a boundary
            Point::new(2.0 * cell, cell),    // corner of a cell
            Point::new(r + eps_mult * RANGE_EPS, 0.0), // slack window
        ];
        let mut index = PointIndex::new(&pts, cell);
        let check = |index: &mut PointIndex, pts: &[Point]| {
            let grid = SpatialGrid::build(pts, cell);
            for q in 0..pts.len() {
                assert_eq!(index.neighbors_within(q, r), grid.neighbors(pts, q, r));
            }
        };
        check(&mut index, &pts);
        // walk the slack-window point across the boundary by a hair
        pts[3] = Point::new(r + (eps_mult + 0.5) * RANGE_EPS, 0.0);
        index.set_point(3, pts[3]);
        check(&mut index, &pts);
        // and park a mover exactly on a far cell boundary
        pts[0] = Point::new(-3.0 * cell, -cell);
        index.set_point(0, pts[0]);
        check(&mut index, &pts);
    }

    #[test]
    fn point_index_pairs_match_brute_force(
        pts in pts_strategy(),
        r in 5.0..150.0f64,
    ) {
        let mut index = PointIndex::new(&pts, r.max(1.0));
        let mut fast = Vec::new();
        index.for_each_pair_within(r, |i, j| fast.push((i, j)));
        fast.sort_unstable();
        let mut slow = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if pts[i].dist(pts[j]) <= r + 1e-9 {
                    slow.push((i, j));
                }
            }
        }
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn connectivity_tracker_matches_flood_oracle(
        pts in pts_fleet_strategy(),
        moves in moves_strategy(),
        rc in 10.0..200.0f64,
        base in (0.0..500.0f64, 0.0..500.0f64),
    ) {
        let base = Point::new(base.0, base.1);
        let mut pts = pts;
        let mut tracker = ConnectivityTracker::new(&pts, base, rc);
        assert_tracker_matches_oracle(&pts, base, rc, &mut tracker);
        for round in moves {
            for (i, x, y) in round {
                let i = i % pts.len();
                pts[i] = Point::new(x, y);
                tracker.set_sensor(i, pts[i]);
            }
            assert_tracker_matches_oracle(&pts, base, rc, &mut tracker);
        }
    }

    #[test]
    fn connectivity_tracker_base_range_walks(
        seed in 0u64..200,
        rc in 10.0..60.0f64,
    ) {
        // Sensors shuttling across the base's range boundary: the hop-1
        // seed set churns on every round.
        use rand::Rng;
        let base = Point::new(250.0, 250.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pts: Vec<Point> = (0..20)
            .map(|_| Point::new(rng.gen_range(200.0..300.0), rng.gen_range(200.0..300.0)))
            .collect();
        let mut tracker = ConnectivityTracker::new(&pts, base, rc);
        for _ in 0..8 {
            for _ in 0..3 {
                let i = rng.gen_range(0..pts.len());
                // jitter around the base-range circle
                let ang = rng.gen_range(0.0..std::f64::consts::TAU);
                let r = rc + rng.gen_range(-5.0..5.0);
                pts[i] = base + Point::from_angle(ang) * r;
                tracker.set_sensor(i, pts[i]);
            }
            assert_tracker_matches_oracle(&pts, base, rc, &mut tracker);
        }
    }

    #[test]
    fn connectivity_tracker_epsilon_boundaries(eps_idx in 0usize..7) {
        let eps_mult = [-3.0f64, -1.0, -0.5, 0.0, 0.5, 1.0, 3.0][eps_idx];
        // Links sitting inside/outside the RANGE_EPS slack window (the
        // PR 3 base-link-vs-edge boundary): tracker and oracle must
        // flip together, for base links and sensor-sensor edges alike.
        let rc = 10.0;
        let base = Point::ORIGIN;
        let spacing = rc + eps_mult * RANGE_EPS;
        let mut pts = vec![Point::new(spacing, 0.0), Point::new(2.0 * spacing, 0.0)];
        let mut tracker = ConnectivityTracker::new(&pts, base, rc);
        assert_tracker_matches_oracle(&pts, base, rc, &mut tracker);
        // sensor 1 re-crosses the edge boundary by a hair
        pts[1] = Point::new(spacing + rc + 0.5 * RANGE_EPS, 0.0);
        tracker.set_sensor(1, pts[1]);
        assert_tracker_matches_oracle(&pts, base, rc, &mut tracker);
        pts[1] = Point::new(spacing + rc + 3.0 * RANGE_EPS, 0.0);
        tracker.set_sensor(1, pts[1]);
        assert_tracker_matches_oracle(&pts, base, rc, &mut tracker);
        // and sensor 0 leaves the base's slack window
        pts[0] = Point::new(rc + 3.0 * RANGE_EPS, 0.0);
        tracker.set_sensor(0, pts[0]);
        assert_tracker_matches_oracle(&pts, base, rc, &mut tracker);
    }

    #[test]
    fn adjacency_tracker_matches_graph_builds_in_order(
        pts in pts_fleet_strategy(),
        moves in moves_strategy(),
        rc in 10.0..200.0f64,
    ) {
        // Every neighbor list must equal a fresh DiskGraph::build —
        // the same indices in the same (grid scan) order, because
        // random walks draw picks from the lists — and BFS hop
        // distances must match, after every batch of moves.
        let mut pts = pts;
        let mut tracker = AdjacencyTracker::new(&pts, rc);
        for round in moves {
            for (i, x, y) in round {
                let i = i % pts.len();
                pts[i] = Point::new(x, y);
                tracker.set_sensor(i, pts[i]);
            }
            let g = DiskGraph::build(&pts, rc);
            for q in 0..pts.len() {
                prop_assert_eq!(tracker.neighbors(q), g.neighbors(q), "list {} rc {}", q, rc);
                prop_assert_eq!(tracker.hop_distances(q), g.hop_distances(q), "hops {}", q);
            }
        }
    }

    #[test]
    fn trackers_stay_oracle_exact_under_removal_and_insertion_churn(
        pts in pts_fleet_strategy(),
        churn in churn_strategy(),
        rc in 10.0..200.0f64,
        cell in 5.0..150.0f64,
    ) {
        // Dynamic runs express sensor death as a teleport to the far
        // off-field parking lot and revival as a teleport back (the
        // World::remove_sensor / insert_sensor change records), so the
        // three network trackers must stay bit-identical to their
        // batch oracles across interleaved moves, failures and
        // reinforcements — and parked sensors must be invisible:
        // disconnected from the base with an empty adjacency list.
        let base = Point::new(250.0, 250.0);
        let park = |i: usize| Point::new(-1.0e7 - i as f64 * 4.0 * rc.max(1.0), -1.0e7);
        let mut pts = pts;
        let mut parked = vec![false; pts.len()];
        let mut index = PointIndex::new(&pts, cell);
        let mut conn = ConnectivityTracker::new(&pts, base, rc);
        let mut adj = AdjacencyTracker::new(&pts, rc);
        for round in churn {
            for (op, i, x, y) in round {
                let i = i % pts.len();
                let p = if op == 1 {
                    parked[i] = true;
                    park(i)
                } else {
                    parked[i] = false;
                    Point::new(x, y)
                };
                pts[i] = p;
                index.set_point(i, p);
                conn.set_sensor(i, p);
                adj.set_sensor(i, p);
            }
            assert_tracker_matches_oracle(&pts, base, rc, &mut conn);
            let grid = SpatialGrid::build(&pts, cell);
            let g = DiskGraph::build(&pts, rc);
            for q in 0..pts.len() {
                prop_assert_eq!(
                    index.neighbors_within(q, rc),
                    grid.neighbors(&pts, q, rc),
                    "index {} rc {} cell {}", q, rc, cell
                );
                prop_assert_eq!(adj.neighbors(q), g.neighbors(q), "adjacency {}", q);
            }
            for (i, &dead) in parked.iter().enumerate() {
                if dead {
                    prop_assert!(!conn.connected_mask()[i], "parked sensor {} reached the base", i);
                    prop_assert!(adj.neighbors(i).is_empty(), "parked sensor {} kept a link", i);
                }
            }
        }
    }

    #[test]
    fn adjacency_tracker_walks_consume_identical_rng_stream(
        pts in pts_strategy(),
        moves in moves_strategy(),
        rc in 10.0..200.0f64,
        seed in 0u64..100,
    ) {
        // The exact consumer contract: a TTL random walk on the
        // tracker visits the same nodes AND leaves the RNG in the
        // same state as one on a fresh graph build.
        use rand::Rng;
        let mut pts = pts;
        let mut tracker = AdjacencyTracker::new(&pts, rc);
        for round in moves {
            for (i, x, y) in round {
                let i = i % pts.len();
                pts[i] = Point::new(x, y);
                tracker.set_sensor(i, pts[i]);
            }
            tracker.sync();
            let g = DiskGraph::build(&pts, rc);
            let mut rng_a = SmallRng::seed_from_u64(seed);
            let mut rng_b = SmallRng::seed_from_u64(seed);
            prop_assert_eq!(
                random_walk(&tracker, 0, 25, &mut rng_a),
                random_walk(&g, 0, 25, &mut rng_b)
            );
            prop_assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "RNG streams diverged");
        }
    }

    #[test]
    fn chain_tree_invariants(n in 2usize..40) {
        let mut tree = Tree::new(n);
        tree.attach(0, Parent::Base);
        for i in 1..n {
            tree.attach(i, Parent::Node(i - 1));
        }
        prop_assert_eq!(tree.attached_count(), n);
        prop_assert_eq!(tree.ancestors(n - 1).len(), n - 1);
        prop_assert_eq!(tree.depth(n - 1), Some(n));
        prop_assert_eq!(tree.subtree(0).len(), n);
        prop_assert_eq!(tree.tree_hops(0, n - 1), n - 1);
        // any descendant as parent would loop
        for i in 0..n - 1 {
            prop_assert!(tree.would_create_loop(i, n - 1));
        }
    }

    #[test]
    fn star_tree_hops(n in 2usize..40) {
        let mut tree = Tree::new(n);
        tree.attach(0, Parent::Base);
        for i in 1..n {
            tree.attach(i, Parent::Node(0));
        }
        for i in 1..n {
            prop_assert_eq!(tree.tree_hops(0, i), 1);
            for j in 1..n {
                if i != j {
                    prop_assert_eq!(tree.tree_hops(i, j), 2);
                }
            }
        }
    }
}

/// Deterministic 10k scatter over a 1000×1000 field (the scale-tier
/// workload shape): golden-ratio low-discrepancy placement, no RNG.
fn scale_fleet(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let t = i as f64 * 0.618_033_988_749_894_9;
            let x = (t - t.floor()) * 1000.0;
            let y = (i as f64 + 0.5) / n as f64 * 1000.0;
            Point::new(x, y)
        })
        .collect()
}

/// Satellite regression: far-off-field sensors — huge positive and
/// negative coordinates whose cell keys saturate the i64 range — must
/// keep every index and tracker byte-identical to its oracle, through
/// moves in and out of the pathological region.
#[test]
fn far_off_field_sensors_stay_oracle_exact() {
    let cell = 60.0;
    let mut pts = vec![
        Point::new(5.0, 5.0),
        Point::new(40.0, 20.0),
        Point::new(-1.0e9, 2.5e9),     // far off-field, large cell keys
        Point::new(1.0e300, -1.0e300), // saturates the i64 cell keys
        Point::new(80.0, 50.0),
        Point::new(-3.0e18, -3.0e18), // near the i64 edge after /cell
    ];
    let mut index = PointIndex::new(&pts, cell);
    let mut adj = AdjacencyTracker::new(&pts, cell);
    let check = |index: &mut PointIndex, adj: &mut AdjacencyTracker, pts: &[Point]| {
        let grid = SpatialGrid::build(pts, cell);
        let g = DiskGraph::build(pts, cell);
        for q in 0..pts.len() {
            assert_eq!(
                index.neighbors_within(q, cell),
                grid.neighbors(pts, q, cell)
            );
            assert_eq!(adj.neighbors(q), g.neighbors(q));
        }
    };
    check(&mut index, &mut adj, &pts);
    // an off-field sensor returns to the fleet, a fleet sensor leaves
    for (i, p) in [
        (3, Point::new(42.0, 22.0)),
        (0, Point::new(7.7e18, -9.1e18)),
        (2, Point::new(-2.0e9, 2.5e9)), // moves *within* the far region
        (0, Point::new(6.0, 4.0)),      // and back
    ] {
        pts[i] = p;
        index.set_point(i, p);
        adj.set_sensor(i, p);
        check(&mut index, &mut adj, &pts);
    }
}

/// Scale tier: a 10k fleet with a small dirty set reconciles through
/// the shard layer and stays bit-identical to a fresh grid build.
/// Oracle comparison is spot-checked (movers + a stride sample) — the
/// full-fleet comparison lives in the sized property tests above.
#[test]
fn scale_tier_10k_sharded_moves_match_oracle() {
    let cell = 60.0;
    let n = 10_000;
    let mut pts = scale_fleet(n);
    let mut index = PointIndex::new(&pts, cell);
    assert!(
        index.shard_count() > 1,
        "a 1000x1000 field at cell 60 spans several shards"
    );
    assert!(
        index.shard_population(pts[0]) < n,
        "shards partition the fleet"
    );
    // Three rounds of 50 scattered movers (≪ n/2: the per-shard path).
    for round in 0..3 {
        for k in 0..50 {
            let i = (k * 199 + round * 7) % n;
            let p = Point::new((pts[i].x + 250.0) % 1000.0, (pts[i].y + 125.0) % 1000.0);
            pts[i] = p;
            index.set_point(i, p);
        }
        let grid = SpatialGrid::build(&pts, cell);
        for k in 0..50 {
            let mover = (k * 199 + round * 7) % n;
            assert_eq!(
                index.neighbors_within(mover, cell),
                grid.neighbors(&pts, mover, cell),
                "mover {mover} round {round}"
            );
        }
        for q in (0..n).step_by(617) {
            assert_eq!(
                index.neighbors_within(q, cell),
                grid.neighbors(&pts, q, cell),
                "sample {q} round {round}"
            );
        }
    }
}

/// Scale tier: a dense local cluster churning inside one shard takes
/// the per-shard rebuild path; results stay oracle-exact and the
/// untouched remainder of the fleet keeps its buckets.
#[test]
fn scale_tier_clustered_churn_rebuilds_only_its_shard() {
    let cell = 10.0; // small cells: the cluster spans one 8x8 shard
    let n = 2_000;
    let mut pts = scale_fleet(n);
    // park a dense cluster inside one shard block (cells 0..8 → x,y < 80)
    for i in 0..60 {
        pts[i] = Point::new(5.0 + (i % 8) as f64 * 9.0, 5.0 + (i / 8) as f64 * 9.0);
    }
    let mut index = PointIndex::new(&pts, cell);
    let before = index.shard_count();
    // churn most of the cluster (over half its shard's population,
    // far below the fleet threshold)
    for i in 0..60 {
        pts[i] = Point::new(
            5.0 + ((i + 3) % 8) as f64 * 9.0,
            5.0 + (((i / 8) + 1) % 8) as f64 * 9.0,
        );
        index.set_point(i, pts[i]);
    }
    let grid = SpatialGrid::build(&pts, cell);
    for q in (0..n).step_by(97).chain(0..60) {
        assert_eq!(
            index.neighbors_within(q, cell),
            grid.neighbors(&pts, q, cell),
            "sensor {q}"
        );
    }
    assert_eq!(
        index.shard_count(),
        before,
        "cluster stayed within its shards"
    );
}
