//! Incrementally-maintained point index for range queries under moves.
//!
//! Invariants (shared with every incremental kernel in this
//! workspace — see `ARCHITECTURE.md`):
//!
//! * **Oracle bit-identity.** Every query answers exactly what a fresh
//!   [`crate::SpatialGrid::build`] over the current points would —
//!   the same indices in the same order — so swapping a per-tick
//!   rebuild for a maintained index can never change simulation
//!   output. Property-tested in `tests/properties.rs`.
//! * **Lazy dirty sets.** [`PointIndex::set_point`] is `O(1)`: it
//!   records the move and defers the bucket update to the next query,
//!   so a burst of moves between two queries costs one reconciliation.
//! * **Rebuild-if-cheaper.** When at least half the points moved since
//!   the last query, reconciliation rebuilds all buckets from scratch
//!   instead of moving them one by one — a query is never
//!   asymptotically more expensive than the full
//!   `SpatialGrid::build` it replaces.
//! * **Sharded reconciliation.** Below the global threshold the same
//!   decision repeats per *shard* (an 8×8 block of grid cells): the
//!   pending moves are grouped into per-shard dirty sets, and a shard
//!   most of whose members are in transit is reconstructed wholesale
//!   while untouched shards are never visited. A 10k-point fleet with
//!   50 dirty points pays for two or three shards, not a fleet-wide
//!   sweep — and because a cell's final bucket content (ascending
//!   indices of its points) is independent of the path taken, every
//!   strategy yields bit-identical queries.

use crate::{within_range, RANGE_EPS};
use msn_geom::Point;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style multiplicative hasher for the `(i64, i64)` cell keys.
/// SipHash dominates the per-query cost of a bucket map this small;
/// a keyed DoS-resistant hash buys nothing here (cell keys come from
/// simulated positions, not attacker input), and the map is only ever
/// probed by key — never iterated — so the hasher cannot influence
/// query results.
///
/// All arithmetic is wrapping on `u64`, so large and negative cell
/// coordinates (far-off-field sensors saturate the `i64` keys) cannot
/// overflow. `finish` folds the high half into the low bits: the map
/// indexes buckets by the *low* bits of the hash, and the low bits of
/// a wrapping product depend only on the low bits of its inputs — at
/// 50k-scale extents, keys agreeing in their low bits but differing
/// in magnitude would otherwise share buckets systematically.
#[derive(Default)]
struct CellHasher(u64);

impl CellHasher {
    #[inline]
    fn add(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for CellHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 32)
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }
    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
}

type CellMap = HashMap<(i64, i64), Vec<u32>, BuildHasherDefault<CellHasher>>;

/// Shard membership lists: shard key → indices of the synced points
/// inside the shard's 8×8 cell block, sorted ascending.
type ShardMap = HashMap<(i64, i64), Vec<u32>, BuildHasherDefault<CellHasher>>;

/// Cells per shard side, as a shift: shards are `2^SHARD_BITS ×
/// 2^SHARD_BITS` blocks of grid cells — the reconciliation unit for
/// batched local movement.
const SHARD_BITS: u32 = 3;

/// The shard containing cell `key`. Arithmetic shift right keeps i64
/// cell coordinates exact end-to-end, negative and saturated extremes
/// included (`-1 >> 3 == -1`, `i64::MIN >> 3` floors toward −∞).
#[inline]
fn shard_of(key: (i64, i64)) -> (i64, i64) {
    (key.0 >> SHARD_BITS, key.1 >> SHARD_BITS)
}

/// A dynamic counterpart of [`crate::SpatialGrid`]: hash buckets of
/// cell side `cell` maintained under point moves, instead of rebuilt
/// from scratch per tick.
///
/// Buckets keep their indices sorted ascending and queries scan the
/// candidate cell window in the same lexicographic order as
/// [`crate::SpatialGrid`], so for any radius `r`,
/// [`PointIndex::within`] returns byte-for-byte what
/// `SpatialGrid::build(points, cell).within(points, center, r)`
/// would. Call sites whose historical grid used a *different* cell
/// size can reproduce that exact order too, via
/// [`PointIndex::neighbors_within_grid_order`].
///
/// Queries at radius `r ≤ cell` scan at most a 3×3 cell window;
/// larger radii stay correct but scan proportionally more cells.
///
/// # Examples
///
/// ```
/// use msn_geom::Point;
/// use msn_net::{PointIndex, SpatialGrid};
///
/// let mut pts = vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0), Point::new(50.0, 0.0)];
/// let mut index = PointIndex::new(&pts, 10.0);
/// assert_eq!(index.neighbors_within(0, 10.0), vec![1]);
/// pts[2] = Point::new(8.0, 0.0); // walks into range
/// index.set_point(2, pts[2]);
/// let oracle = SpatialGrid::build(&pts, 10.0).neighbors(&pts, 0, 10.0);
/// assert_eq!(index.neighbors_within(0, 10.0), oracle);
/// ```
#[derive(Debug, Clone)]
pub struct PointIndex {
    cell: f64,
    /// Latest positions reported via `set_point`.
    current: Vec<Point>,
    /// Positions the buckets currently reflect.
    synced: Vec<Point>,
    /// Points whose `current` may differ from `synced`.
    dirty: Vec<u32>,
    is_dirty: Vec<bool>,
    /// Cell `(gx, gy)` holds the indices of the synced points inside
    /// it, sorted ascending.
    buckets: CellMap,
    /// Shard `(sx, sy)` holds the indices of the synced points inside
    /// its cell block, sorted ascending — the membership lists behind
    /// the per-shard rebuild-if-cheaper decision.
    shards: ShardMap,
}

impl PointIndex {
    /// Indexes `points` with grid cells of side `cell` meters.
    ///
    /// A good `cell` is the largest radius you intend to query at.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not strictly positive or a coordinate is
    /// not finite.
    pub fn new(points: &[Point], cell: f64) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        for (i, p) in points.iter().enumerate() {
            assert!(p.x.is_finite() && p.y.is_finite(), "non-finite point {i}");
        }
        let n = points.len();
        let mut index = PointIndex {
            cell,
            current: points.to_vec(),
            synced: points.to_vec(),
            dirty: Vec::new(),
            is_dirty: vec![false; n],
            buckets: CellMap::default(),
            shards: ShardMap::default(),
        };
        index.rebuild();
        index
    }

    /// The cell side length.
    #[inline]
    pub fn cell(&self) -> f64 {
        self.cell
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// Whether the index holds zero points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// The latest reported position of point `i` (which pending,
    /// not-yet-reconciled moves already reflect).
    #[inline]
    pub fn point(&self, i: usize) -> Point {
        self.current[i]
    }

    /// All latest reported positions.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.current
    }

    /// Records point `i`'s new position. `O(1)`: the bucket move is
    /// deferred to the next query.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate is not finite (matching
    /// [`crate::SpatialGrid::build`]).
    #[inline]
    pub fn set_point(&mut self, i: usize, p: Point) {
        assert!(p.x.is_finite() && p.y.is_finite(), "non-finite point {i}");
        self.current[i] = p;
        if !self.is_dirty[i] {
            self.is_dirty[i] = true;
            self.dirty.push(i as u32);
        }
    }

    #[inline]
    fn key_at(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    #[inline]
    fn key(&self, p: Point) -> (i64, i64) {
        Self::key_at(p, self.cell)
    }

    /// Full reconstruction: every bucket and shard membership list
    /// reinserted in index order (which keeps each list ascending for
    /// free).
    fn rebuild(&mut self) {
        self.synced.copy_from_slice(&self.current);
        for &i in &self.dirty {
            self.is_dirty[i as usize] = false;
        }
        self.dirty.clear();
        self.buckets.clear();
        self.shards.clear();
        for i in 0..self.synced.len() {
            let key = self.key(self.synced[i]);
            self.buckets.entry(key).or_default().push(i as u32);
            self.shards.entry(shard_of(key)).or_default().push(i as u32);
        }
    }

    /// Reconstructs one shard's buckets from its membership list:
    /// every cell bucket in the shard's block is dropped, then the
    /// members are reinserted in ascending index order — each cell
    /// receives an ascending subsequence, so bucket order (and with
    /// it query output) is identical to the per-point path.
    fn rebuild_shard(&mut self, s: (i64, i64)) {
        let side = 1i64 << SHARD_BITS;
        let x0 = s.0 << SHARD_BITS;
        let y0 = s.1 << SHARD_BITS;
        // Inclusive bounds: `x0 + side` would overflow for the shard
        // holding the saturated i64::MAX cell coordinate.
        for gx in x0..=x0 + (side - 1) {
            for gy in y0..=y0 + (side - 1) {
                self.buckets.remove(&(gx, gy));
            }
        }
        if let Some(members) = self.shards.get(&s) {
            for &i in members {
                let key = self.key(self.synced[i as usize]);
                self.buckets.entry(key).or_default().push(i);
            }
        }
    }

    /// Applies pending moves. Three tiers, cheapest applicable wins,
    /// all bit-identical in effect: per-point bucket transfers for
    /// scattered movement, per-shard reconstruction where a shard's
    /// dirty set rivals its population, full rebuild when half the
    /// fleet moved.
    fn sync(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        msn_obs::counter("pidx.syncs", 1);
        msn_obs::value("pidx.dirty", self.dirty.len() as f64);
        if 2 * self.dirty.len() >= self.current.len() {
            msn_obs::counter("pidx.rebuilds", 1);
            self.rebuild();
            return;
        }
        let mut dirty = std::mem::take(&mut self.dirty);
        // Group the pending cell transfers into per-shard dirty sets:
        // `touched` counts how many transfers hit each shard (as
        // source or destination).
        // (point, source cell, destination cell) per pending transfer
        type CellMove = (u32, (i64, i64), (i64, i64));
        let mut moves: Vec<CellMove> = Vec::new();
        let mut touched: HashMap<(i64, i64), u32, BuildHasherDefault<CellHasher>> =
            HashMap::default();
        for &i in &dirty {
            let iu = i as usize;
            self.is_dirty[iu] = false;
            let (from, to) = (self.synced[iu], self.current[iu]);
            if from == to {
                continue;
            }
            let old_key = self.key(from);
            let new_key = self.key(to);
            self.synced[iu] = to;
            if old_key == new_key {
                continue;
            }
            let (os, ns) = (shard_of(old_key), shard_of(new_key));
            *touched.entry(os).or_insert(0) += 1;
            if ns != os {
                *touched.entry(ns).or_insert(0) += 1;
            }
            moves.push((i, old_key, new_key));
        }
        // Rebuild-if-cheaper, per shard: reconstructing a shard costs
        // O(cells + members); per-point transfers cost a remove +
        // sorted insert each. Mirror the global half-the-population
        // rule at shard granularity. (Sorted for determinism hygiene —
        // shard rebuilds are independent, but nothing downstream
        // should ever observe map iteration order.)
        let mut rebuild_shards: Vec<(i64, i64)> = touched
            .iter()
            .filter(|&(s, &cnt)| 2 * cnt as usize >= self.shards.get(s).map_or(0, Vec::len))
            .map(|(&s, _)| s)
            .collect();
        rebuild_shards.sort_unstable();
        for &(i, old_key, new_key) in &moves {
            msn_obs::counter("pidx.bucket_moves", 1);
            let (os, ns) = (shard_of(old_key), shard_of(new_key));
            // Membership transfer keeps the shard lists exact; bucket
            // work is skipped wherever a shard reconstruction will
            // redo it wholesale below.
            if os != ns {
                let members = self.shards.get_mut(&os).expect("shard has member");
                let at = members.binary_search(&i).expect("point in shard");
                members.remove(at);
                if members.is_empty() {
                    self.shards.remove(&os);
                }
                let members = self.shards.entry(ns).or_default();
                let at = members.binary_search(&i).expect_err("point was absent");
                members.insert(at, i);
            }
            if rebuild_shards.binary_search(&os).is_err() {
                let bucket = self.buckets.get_mut(&old_key).expect("point indexed");
                let at = bucket.binary_search(&i).expect("point in cell");
                // Vec::remove / sorted insert (not swap_remove + push):
                // ascending bucket order is what makes query results
                // identical to SpatialGrid's.
                bucket.remove(at);
                if bucket.is_empty() {
                    self.buckets.remove(&old_key);
                }
            }
            if rebuild_shards.binary_search(&ns).is_err() {
                let bucket = self.buckets.entry(new_key).or_default();
                let at = bucket.binary_search(&i).expect_err("point was absent");
                bucket.insert(at, i);
            }
        }
        for &s in &rebuild_shards {
            msn_obs::counter("pidx.shard_rebuilds", 1);
            self.rebuild_shard(s);
        }
        // Hand the capacity back for the next batch of moves.
        dirty.clear();
        self.dirty = dirty;
    }

    /// Number of synced points in the shard containing `p` — the
    /// population behind the per-shard rebuild decision, exposed so
    /// trackers layered on this index can reason at the same
    /// granularity (and tests can observe shard accounting).
    pub fn shard_population(&self, p: Point) -> usize {
        self.shards.get(&shard_of(self.key(p))).map_or(0, Vec::len)
    }

    /// Number of non-empty shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Indices of all points within `r` of `center` (inclusive, under
    /// the shared [`crate::RANGE_EPS`] slack), including any point
    /// equal to `center` itself — byte-identical, order included, to
    /// `SpatialGrid::build(points, self.cell()).within(points, center, r)`
    /// on the current points.
    pub fn within(&mut self, center: Point, r: f64) -> Vec<usize> {
        self.sync();
        let mut out = Vec::with_capacity(16);
        // Exact cell bounds of the slack-padded reach (the same
        // minimal-window rule SpatialGrid::within uses).
        let reach = r + RANGE_EPS;
        let (cx_lo, cy_lo) = self.key(Point::new(center.x - reach, center.y - reach));
        let (cx_hi, cy_hi) = self.key(Point::new(center.x + reach, center.y + reach));
        for gx in cx_lo..=cx_hi {
            for gy in cy_lo..=cy_hi {
                let Some(bucket) = self.buckets.get(&(gx, gy)) else {
                    continue;
                };
                for &j in bucket {
                    if within_range(self.synced[j as usize], center, r) {
                        out.push(j as usize);
                    }
                }
            }
        }
        out
    }

    /// Indices of all points within `r` of point `i`, excluding `i`
    /// itself — byte-identical, order included, to
    /// `SpatialGrid::build(points, self.cell()).neighbors(points, i, r)`.
    pub fn neighbors_within(&mut self, i: usize, r: f64) -> Vec<usize> {
        let mut v = self.within(self.current[i], r);
        v.retain(|&j| j != i);
        v
    }

    /// Like [`PointIndex::neighbors_within`], but ordered as a
    /// `SpatialGrid::build(points, order_cell)` query would order it:
    /// ascending by `(⌊x/order_cell⌋, ⌊y/order_cell⌋, index)`.
    ///
    /// Call sites migrating off a per-tick grid whose cell size
    /// differs from this index's use this to keep tie-breaks (nearest
    /// neighbor scans, first-minimum folds) byte-identical to the
    /// grid they replace.
    pub fn neighbors_within_grid_order(&mut self, i: usize, r: f64, order_cell: f64) -> Vec<usize> {
        assert!(order_cell > 0.0, "order cell size must be positive");
        let mut v = self.neighbors_within(i, r);
        if order_cell != self.cell {
            v.sort_unstable_by_key(|&j| {
                let (gx, gy) = Self::key_at(self.synced[j], order_cell);
                (gx, gy, j)
            });
        }
        v
    }

    /// Calls `f(i, j)` once for every unordered pair of points within
    /// `r` of each other, with `i < j`; pairs are visited in ascending
    /// order of `i`, and for each `i` in the same cell-window order as
    /// [`PointIndex::within`].
    pub fn for_each_pair_within(&mut self, r: f64, mut f: impl FnMut(usize, usize)) {
        self.sync();
        let reach = r + RANGE_EPS;
        for i in 0..self.synced.len() {
            let p = self.synced[i];
            let (cx_lo, cy_lo) = self.key(Point::new(p.x - reach, p.y - reach));
            let (cx_hi, cy_hi) = self.key(Point::new(p.x + reach, p.y + reach));
            for gx in cx_lo..=cx_hi {
                for gy in cy_lo..=cy_hi {
                    let Some(bucket) = self.buckets.get(&(gx, gy)) else {
                        continue;
                    };
                    for &j in bucket {
                        let j = j as usize;
                        if j > i && within_range(self.synced[j], p, r) {
                            f(i, j);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpatialGrid;

    fn oracle_neighbors(pts: &[Point], cell: f64, i: usize, r: f64) -> Vec<usize> {
        SpatialGrid::build(pts, cell).neighbors(pts, i, r)
    }

    #[test]
    fn moves_track_the_grid_oracle_in_order() {
        let mut pts = vec![
            Point::new(5.0, 5.0),
            Point::new(12.0, 5.0),
            Point::new(45.0, 45.0),
            Point::new(5.0, 14.0),
        ];
        let mut index = PointIndex::new(&pts, 10.0);
        for (i, p) in [
            (2, Point::new(8.0, 8.0)),
            (0, Point::new(44.0, 44.0)),
            (2, Point::new(9.0, 9.0)), // moves again before a query
            (3, Point::new(-3.0, -7.0)),
        ] {
            pts[i] = p;
            index.set_point(i, p);
            for q in 0..pts.len() {
                for r in [4.0, 10.0, 30.0] {
                    assert_eq!(
                        index.neighbors_within(q, r),
                        oracle_neighbors(&pts, 10.0, q, r),
                        "point {q} radius {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_moves_take_the_rebuild_path() {
        let mut pts: Vec<Point> = (0..12).map(|i| Point::new(7.0 * i as f64, 3.0)).collect();
        let mut index = PointIndex::new(&pts, 15.0);
        for (i, p) in pts.iter_mut().enumerate() {
            *p = Point::new(80.0 - 7.0 * i as f64, 9.0 * (i % 2) as f64);
            index.set_point(i, *p);
        }
        for q in 0..pts.len() {
            assert_eq!(
                index.neighbors_within(q, 15.0),
                oracle_neighbors(&pts, 15.0, q, 15.0)
            );
        }
    }

    #[test]
    fn grid_order_emulates_other_cell_sizes() {
        // Two neighbors whose scan order flips between cell sizes:
        // with cell 40 both share a bucket (ascending index), with
        // cell 10 the bucket scan meets them in reverse.
        let pts = vec![
            Point::new(5.0, 5.0),
            Point::new(15.0, 5.0), // cell-10 bucket (1,0)
            Point::new(6.0, 5.0),  // cell-10 bucket (0,0): scanned first
        ];
        let mut index = PointIndex::new(&pts, 40.0);
        assert_eq!(index.neighbors_within(0, 12.0), vec![1, 2]);
        for order_cell in [10.0, 3.0, 40.0] {
            assert_eq!(
                index.neighbors_within_grid_order(0, 12.0, order_cell),
                oracle_neighbors(&pts, order_cell, 0, 12.0),
                "order cell {order_cell}"
            );
        }
    }

    #[test]
    fn radius_beyond_cell_size_stays_exact() {
        let pts: Vec<Point> = (0..9)
            .map(|i| Point::new(20.0 * (i % 3) as f64, 20.0 * (i / 3) as f64))
            .collect();
        let mut index = PointIndex::new(&pts, 10.0);
        assert_eq!(
            index.neighbors_within(4, 45.0),
            oracle_neighbors(&pts, 10.0, 4, 45.0)
        );
    }

    #[test]
    fn duplicates_and_redundant_sets() {
        let pts = vec![Point::new(1.0, 1.0); 4];
        let mut index = PointIndex::new(&pts, 5.0);
        assert_eq!(index.within(Point::new(1.0, 1.0), 1.0).len(), 4);
        assert_eq!(index.neighbors_within(2, 1.0), vec![0, 1, 3]);
        for _ in 0..3 {
            index.set_point(1, pts[1]); // no-op moves reconcile cleanly
        }
        assert_eq!(index.neighbors_within(2, 1.0), vec![0, 1, 3]);
        assert_eq!(index.len(), 4);
        assert!(!index.is_empty());
        assert_eq!(index.cell(), 5.0);
        assert_eq!(index.point(2), pts[2]);
        assert_eq!(index.points(), &pts[..]);
    }

    #[test]
    fn empty_index() {
        let mut index = PointIndex::new(&[], 5.0);
        assert!(index.is_empty());
        assert!(index.within(Point::ORIGIN, 100.0).is_empty());
        index.for_each_pair_within(100.0, |_, _| panic!("no pairs"));
    }

    #[test]
    fn pairs_visit_each_edge_once() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(8.0, 0.0),
            Point::new(16.0, 0.0),
            Point::new(100.0, 100.0),
        ];
        let mut index = PointIndex::new(&pts, 10.0);
        let mut pairs = Vec::new();
        index.for_each_pair_within(10.0, |i, j| pairs.push((i, j)));
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 2)]);
    }
}
