//! Incremental base-rooted connectivity.
//!
//! Invariants (the incremental-tracker pattern, see
//! `ARCHITECTURE.md`):
//!
//! * **Oracle bit-identity** — every query equals
//!   [`crate::DiskGraph::build`] + flood on the current positions,
//!   bit for bit (hop distances are unique, so any exact repair
//!   reproduces the oracle; property-tested in
//!   `tests/properties.rs`).
//! * **Lazy dirty sets** — [`ConnectivityTracker::set_sensor`] is
//!   `O(1)`; link diffs and distance repair run on the next query.
//! * **Rebuild-if-cheaper** — when most of the fleet moved, or the
//!   invalidated region outgrows half of it, the tracker falls back
//!   to a fresh flood instead of repairing.
//!
//! The proximity substrate (bucket maintenance under moves) is the
//! shared [`crate::PointIndex`]; this module owns only the adjacency
//! diffs and the dynamic-BFS distance repair.

use crate::{within_range, PointIndex};
use msn_geom::Point;
use std::collections::VecDeque;

/// Hop distance marking an unreachable sensor.
const UNREACHED: u32 = u32::MAX;

/// Incremental counterpart of [`crate::DiskGraph::build`] +
/// [`crate::DiskGraph::flood_from_base`]: maintains the base-rooted
/// reachable set and per-sensor hop distances under sensor moves, so
/// that moving one sensor and re-asking "who is connected?" costs
/// `O(local neighborhood + affected region)` instead of a full
/// `O(N · deg)` graph rebuild plus an `O(N + E)` flood.
///
/// Moves are recorded lazily ([`ConnectivityTracker::set_sensor`] is
/// `O(1)`) and reconciled on the next query. Reconciliation diffs the
/// moved sensors' link neighborhoods (under the shared
/// [`crate::within_range`] / [`crate::RANGE_EPS`] rule) against an
/// incrementally-maintained [`PointIndex`] and repairs the hop
/// distances with a bounded dynamic-BFS frontier:
///
/// 1. **invalidate** — sensors whose current hop count lost its
///    support (a neighbor one hop closer, or the base link itself)
///    are collected level by level;
/// 2. **relabel** — the invalidated region is re-flooded from its
///    stable boundary with a bucket-queue BFS;
/// 3. **relax** — newly appeared links and newly gained base links
///    propagate distance *decreases* with a monotone BFS.
///
/// When most of the fleet moved since the last query, or the
/// invalidated region grows past half the fleet, the tracker rebuilds
/// from scratch instead (rebuild-if-cheaper, mirroring
/// `msn_field::CoverageTracker`), so a query is never asymptotically
/// more expensive than the flood it replaces.
///
/// Exactness: hop distances are a shortest-path metric, so they are
/// unique — any exact repair reproduces the
/// `DiskGraph::build` + `flood_from_base` oracle *bit for bit*,
/// including sensors leaving or entering radio range of the base
/// (property-tested in `tests/properties.rs`).
///
/// # Examples
///
/// ```
/// use msn_geom::Point;
/// use msn_net::ConnectivityTracker;
///
/// let mut pts = vec![Point::new(5.0, 0.0), Point::new(12.0, 0.0), Point::new(40.0, 0.0)];
/// let mut tracker = ConnectivityTracker::new(&pts, Point::new(0.0, 0.0), 10.0);
/// assert_eq!(tracker.connected_mask(), vec![true, true, false]);
/// assert_eq!(tracker.hops(1), Some(2));
/// pts[2] = Point::new(20.0, 0.0); // walks into range of sensor 1
/// tracker.set_sensor(2, pts[2]);
/// assert_eq!(tracker.connected_mask(), vec![true, true, true]);
/// ```
#[derive(Debug, Clone)]
pub struct ConnectivityTracker {
    rc: f64,
    base: Point,
    /// Incrementally-maintained bucket grid; its `point(i)` is the
    /// latest position reported via `set_sensor`.
    index: PointIndex,
    /// Positions the adjacency and distances currently reflect (the
    /// index reconciles its buckets lazily on its own schedule; this
    /// tracker's adjacency diff needs its own before-image).
    synced: Vec<Point>,
    /// Sensors whose latest position may differ from `synced`.
    dirty: Vec<u32>,
    is_dirty: Vec<bool>,
    /// Link neighborhoods over `synced`, each sorted ascending.
    adj: Vec<Vec<u32>>,
    /// Hops from the base station (direct base link = 1,
    /// [`UNREACHED`] = disconnected).
    dist: Vec<u32>,
    // --- reusable repair scratch ---
    queued: Vec<bool>,
    raised: Vec<bool>,
    settled: Vec<bool>,
    levels: Vec<Vec<u32>>,
    /// Every index whose `queued` flag was set during the current
    /// repair — flags are reset through this list afterwards, so a
    /// repair touching 50 sensors of a 10k fleet never pays three
    /// fleet-sized scratch fills.
    touched: Vec<u32>,
}

impl ConnectivityTracker {
    /// Builds the tracker for `positions`, a base station at `base`
    /// and communication range `rc`.
    ///
    /// # Panics
    ///
    /// Panics if `rc` is not strictly positive.
    pub fn new(positions: &[Point], base: Point, rc: f64) -> Self {
        assert!(rc > 0.0, "communication range must be positive");
        let n = positions.len();
        let mut tracker = ConnectivityTracker {
            rc,
            base,
            index: PointIndex::new(positions, rc.max(1.0)),
            synced: positions.to_vec(),
            dirty: Vec::new(),
            is_dirty: vec![false; n],
            adj: vec![Vec::new(); n],
            dist: vec![UNREACHED; n],
            queued: vec![false; n],
            raised: vec![false; n],
            settled: vec![false; n],
            levels: Vec::new(),
            touched: Vec::new(),
        };
        tracker.rebuild();
        tracker
    }

    /// The communication range.
    #[inline]
    pub fn rc(&self) -> f64 {
        self.rc
    }

    /// The base station position.
    #[inline]
    pub fn base(&self) -> Point {
        self.base
    }

    /// Number of tracked sensors.
    #[inline]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the tracker follows zero sensors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Records sensor `i`'s new position. `O(1)`: the link diff and
    /// distance repair are deferred to the next query.
    #[inline]
    pub fn set_sensor(&mut self, i: usize, p: Point) {
        self.index.set_point(i, p);
        if !self.is_dirty[i] {
            self.is_dirty[i] = true;
            self.dirty.push(i as u32);
        }
    }

    /// Whether sensor `i` is (multi-hop) connected to the base — equal
    /// to `flood_from_base(...)[i]` on the current positions.
    pub fn is_connected(&mut self, i: usize) -> bool {
        self.sync();
        self.dist[i] != UNREACHED
    }

    /// The connected-to-base mask — equal to
    /// [`crate::DiskGraph::flood_from_base`] on the current positions.
    pub fn connected_mask(&mut self) -> Vec<bool> {
        self.sync();
        self.dist.iter().map(|&d| d != UNREACHED).collect()
    }

    /// Whether every sensor is connected to the base.
    pub fn all_connected(&mut self) -> bool {
        self.sync();
        self.dist.iter().all(|&d| d != UNREACHED)
    }

    /// Hops from the base to sensor `i` (a direct base link counts as
    /// 1), or `None` if disconnected.
    pub fn hops(&mut self, i: usize) -> Option<usize> {
        self.sync();
        (self.dist[i] != UNREACHED).then_some(self.dist[i] as usize)
    }

    /// All hop distances (`usize::MAX` = unreachable) — equal to
    /// [`crate::DiskGraph::base_hop_distances`] on the current
    /// positions.
    pub fn hop_distances(&mut self) -> Vec<usize> {
        self.sync();
        self.dist
            .iter()
            .map(|&d| {
                if d == UNREACHED {
                    usize::MAX
                } else {
                    d as usize
                }
            })
            .collect()
    }

    /// Sorted link neighborhood of sensor `i` (excluding `i` itself)
    /// over the index's current positions.
    fn neighbors_sorted(&mut self, i: usize) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .index
            .neighbors_within(i, self.rc)
            .into_iter()
            .map(|j| j as u32)
            .collect();
        out.sort_unstable();
        out
    }

    /// Full reconstruction: adjacency re-queried from the point
    /// index, distances re-flooded.
    fn rebuild(&mut self) {
        let n = self.synced.len();
        self.synced.copy_from_slice(self.index.points());
        for &i in &self.dirty {
            self.is_dirty[i as usize] = false;
        }
        self.dirty.clear();
        for i in 0..n {
            self.adj[i] = self.neighbors_sorted(i);
        }
        self.flood();
    }

    /// BFS flood from the base over the synced adjacency.
    fn flood(&mut self) {
        self.dist.fill(UNREACHED);
        let mut queue = VecDeque::new();
        for i in 0..self.synced.len() {
            if within_range(self.synced[i], self.base, self.rc) {
                self.dist[i] = 1;
                queue.push_back(i as u32);
            }
        }
        while let Some(u) = queue.pop_front() {
            let du = self.dist[u as usize];
            for k in 0..self.adj[u as usize].len() {
                let v = self.adj[u as usize][k] as usize;
                if self.dist[v] == UNREACHED {
                    self.dist[v] = du + 1;
                    queue.push_back(v as u32);
                }
            }
        }
    }

    /// Applies pending moves: link diffs + bounded dynamic-BFS repair
    /// when few sensors moved, a full rebuild when that would cost
    /// more.
    fn sync(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        let n = self.synced.len();
        msn_obs::counter("conn.syncs", 1);
        msn_obs::value("conn.dirty", self.dirty.len() as f64);
        // Filter no-op moves *before* the rebuild decision, so
        // redundant `set_sensor` calls never push a large fleet over
        // the fleet-wide rebuild threshold. (Bucket maintenance below
        // reconciles per shard inside the shared [`PointIndex`].)
        let dirty = std::mem::take(&mut self.dirty);
        let mut moved: Vec<u32> = Vec::with_capacity(dirty.len());
        for i in dirty {
            let iu = i as usize;
            self.is_dirty[iu] = false;
            let (from, to) = (self.synced[iu], self.index.point(iu));
            if from == to {
                continue;
            }
            self.synced[iu] = to;
            moved.push(i);
        }
        if moved.is_empty() {
            return;
        }
        if 2 * moved.len() >= n {
            msn_obs::counter("conn.rebuilds", 1);
            self.rebuild();
            return;
        }
        msn_obs::counter("conn.repairs", 1);
        // Diff each moved sensor's neighborhood into link events. Both
        // lists are sorted, and earlier diffs update `adj` in place, so
        // an edge between two moved sensors is recorded exactly once.
        let mut removed: Vec<(u32, u32)> = Vec::new();
        let mut added: Vec<(u32, u32)> = Vec::new();
        for &i in &moved {
            let iu = i as usize;
            let new_nbrs = self.neighbors_sorted(iu);
            let old_nbrs = std::mem::take(&mut self.adj[iu]);
            let (mut a, mut b) = (0, 0);
            while a < old_nbrs.len() || b < new_nbrs.len() {
                let old = old_nbrs.get(a).copied();
                let new = new_nbrs.get(b).copied();
                if old == new {
                    a += 1;
                    b += 1;
                } else if old.is_some_and(|o| new.is_none_or(|v| o < v)) {
                    // link to `o` disappeared
                    let o = old.expect("checked is_some");
                    let peer = &mut self.adj[o as usize];
                    let at = peer.binary_search(&i).expect("symmetric edge");
                    peer.remove(at);
                    removed.push((i, o));
                    a += 1;
                } else {
                    // link to `v` appeared
                    let v = new.expect("neither equal nor removal");
                    let peer = &mut self.adj[v as usize];
                    let at = peer.binary_search(&i).expect_err("edge was absent");
                    peer.insert(at, i);
                    added.push((i, v));
                    b += 1;
                }
            }
            self.adj[iu] = new_nbrs;
        }
        self.repair(&moved, &removed, &added);
    }

    fn ensure_level(&mut self, lvl: usize) {
        if self.levels.len() <= lvl {
            self.levels.resize_with(lvl + 1, Vec::new);
        }
    }

    /// Resets the per-repair scratch flags by walking exactly the
    /// entries a repair set (`queued` via the touched list, `raised` /
    /// `settled` via the raised list) — `O(affected region)`, never a
    /// fleet-wide fill. Must run on *every* repair exit, including the
    /// rebuild fallback, or stale flags would corrupt the next repair.
    fn reset_repair_flags(&mut self, raised_list: &[(u32, u32)]) {
        let touched = std::mem::take(&mut self.touched);
        for &v in &touched {
            self.queued[v as usize] = false;
        }
        self.touched = touched;
        self.touched.clear();
        for &(v, _) in raised_list {
            self.raised[v as usize] = false;
            self.settled[v as usize] = false;
        }
    }

    /// Exact hop-distance repair after a batch of link events.
    fn repair(&mut self, moved: &[u32], removed: &[(u32, u32)], added: &[(u32, u32)]) {
        let n = self.synced.len();
        debug_assert!(self.touched.is_empty(), "scratch reset on last exit");
        for lvl in &mut self.levels {
            lvl.clear();
        }

        // ---- Phase 1: invalidate. Collect, level by level, every
        // sensor whose hop count lost its support — a removed link, a
        // lost base link, or (cascading) a supporter that was itself
        // invalidated. Support never comes from the same level, so
        // processing levels in ascending order finalizes each level's
        // raise decisions before they are consulted.
        let enqueue = |this: &mut Self, v: u32| {
            let d = this.dist[v as usize];
            if d != UNREACHED && !this.queued[v as usize] {
                this.queued[v as usize] = true;
                this.touched.push(v);
                this.ensure_level(d as usize);
                this.levels[d as usize].push(v);
            }
        };
        for &m in moved {
            enqueue(self, m);
        }
        for &(u, v) in removed {
            enqueue(self, u);
            enqueue(self, v);
        }
        // (v, hop count before the repair) of every invalidated sensor
        let mut raised_list: Vec<(u32, u32)> = Vec::new();
        let mut lvl = 0;
        while lvl < self.levels.len() {
            let bucket = std::mem::take(&mut self.levels[lvl]);
            for v in bucket {
                let vu = v as usize;
                let dv = self.dist[vu];
                debug_assert_eq!(dv as usize, lvl);
                let supported = if dv == 1 {
                    within_range(self.synced[vu], self.base, self.rc)
                } else {
                    self.adj[vu]
                        .iter()
                        .any(|&u| !self.raised[u as usize] && self.dist[u as usize] == dv - 1)
                };
                if supported {
                    continue;
                }
                self.raised[vu] = true;
                raised_list.push((v, dv));
                for k in 0..self.adj[vu].len() {
                    let u = self.adj[vu][k];
                    let uu = u as usize;
                    if !self.raised[uu] && !self.queued[uu] && self.dist[uu] == dv + 1 {
                        self.queued[uu] = true;
                        self.touched.push(u);
                        self.ensure_level(lvl + 1);
                        self.levels[lvl + 1].push(u);
                    }
                }
            }
            lvl += 1;
        }
        // Bounded frontier: when the invalidated region spans most of
        // the fleet, a fresh flood is cheaper than repairing it.
        msn_obs::value("conn.raised", raised_list.len() as f64);
        if 2 * raised_list.len() >= n.max(1) {
            msn_obs::counter("conn.repair_fallbacks", 1);
            self.reset_repair_flags(&raised_list);
            self.rebuild();
            return;
        }

        // ---- Phase 2: relabel. Re-flood the invalidated region from
        // its stable boundary (bucket-queue BFS, lazy deletion via the
        // settled flags). Sensors the boundary never reaches stay
        // unreachable.
        for &(v, _) in &raised_list {
            let vu = v as usize;
            let cand = if within_range(self.synced[vu], self.base, self.rc) {
                1
            } else {
                self.adj[vu]
                    .iter()
                    .filter(|&&u| !self.raised[u as usize])
                    .map(|&u| self.dist[u as usize])
                    .filter(|&d| d != UNREACHED)
                    .min()
                    .map_or(UNREACHED, |d| d + 1)
            };
            self.dist[vu] = UNREACHED;
            if cand != UNREACHED {
                self.ensure_level(cand as usize);
                self.levels[cand as usize].push(v);
            }
        }
        let mut lvl = 1;
        while lvl < self.levels.len() {
            let bucket = std::mem::take(&mut self.levels[lvl]);
            for v in bucket {
                let vu = v as usize;
                if self.settled[vu] {
                    continue;
                }
                self.settled[vu] = true;
                self.dist[vu] = lvl as u32;
                for k in 0..self.adj[vu].len() {
                    let u = self.adj[vu][k];
                    let uu = u as usize;
                    if self.raised[uu] && !self.settled[uu] {
                        self.ensure_level(lvl + 1);
                        self.levels[lvl + 1].push(u);
                    }
                }
            }
            lvl += 1;
        }

        // ---- Phase 3: relax. Distance *decreases* enter through
        // newly appeared links, newly gained base links, and
        // invalidated sensors that relabeled below their old hop count
        // (their untouched neighbors may now deserve less too); a
        // monotone bucket BFS propagates them to exactness.
        let improve = |this: &mut Self, v: u32, d: u32| {
            if d < this.dist[v as usize] {
                this.dist[v as usize] = d;
                this.ensure_level(d as usize);
                this.levels[d as usize].push(v);
            }
        };
        for &m in moved {
            let mu = m as usize;
            if within_range(self.synced[mu], self.base, self.rc) {
                improve(self, m, 1);
            }
        }
        for &(u, v) in added {
            let (du, dv) = (self.dist[u as usize], self.dist[v as usize]);
            if du != UNREACHED {
                improve(self, v, du + 1);
            }
            if dv != UNREACHED {
                improve(self, u, dv + 1);
            }
        }
        for &(v, old_d) in &raised_list {
            let d = self.dist[v as usize];
            if d < old_d {
                self.ensure_level(d as usize);
                self.levels[d as usize].push(v);
            }
        }
        let mut lvl = 1;
        while lvl < self.levels.len() {
            let bucket = std::mem::take(&mut self.levels[lvl]);
            for v in bucket {
                let vu = v as usize;
                if self.dist[vu] != lvl as u32 {
                    continue; // superseded by a better label
                }
                for k in 0..self.adj[vu].len() {
                    let u = self.adj[vu][k];
                    improve(self, u, lvl as u32 + 1);
                }
            }
            lvl += 1;
        }
        self.reset_repair_flags(&raised_list);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskGraph;

    fn oracle_mask(pts: &[Point], base: Point, rc: f64) -> Vec<bool> {
        DiskGraph::build(pts, rc).flood_from_base(pts, base, rc)
    }

    fn oracle_hops(pts: &[Point], base: Point, rc: f64) -> Vec<usize> {
        DiskGraph::build(pts, rc).base_hop_distances(pts, base, rc)
    }

    fn assert_matches(tracker: &mut ConnectivityTracker, pts: &[Point], base: Point, rc: f64) {
        assert_eq!(tracker.connected_mask(), oracle_mask(pts, base, rc));
        assert_eq!(tracker.hop_distances(), oracle_hops(pts, base, rc));
    }

    #[test]
    fn chain_moves_track_the_oracle() {
        let base = Point::ORIGIN;
        let rc = 10.0;
        let mut pts: Vec<Point> = (0..6)
            .map(|i| Point::new(8.0 * i as f64 + 8.0, 0.0))
            .collect();
        let mut tracker = ConnectivityTracker::new(&pts, base, rc);
        assert_matches(&mut tracker, &pts, base, rc);
        assert_eq!(tracker.hops(0), Some(1));
        assert_eq!(tracker.hops(5), Some(6));
        // break the chain in the middle
        pts[2] = Point::new(24.0, 50.0);
        tracker.set_sensor(2, pts[2]);
        assert_matches(&mut tracker, &pts, base, rc);
        assert!(!tracker.is_connected(5));
        // and mend it again
        pts[2] = Point::new(24.0, 4.0);
        tracker.set_sensor(2, pts[2]);
        assert_matches(&mut tracker, &pts, base, rc);
        assert!(tracker.all_connected());
    }

    #[test]
    fn base_range_entry_and_exit() {
        let base = Point::new(50.0, 50.0);
        let rc = 10.0;
        let mut pts = vec![Point::new(100.0, 100.0), Point::new(108.0, 100.0)];
        let mut tracker = ConnectivityTracker::new(&pts, base, rc);
        assert_eq!(tracker.connected_mask(), vec![false, false]);
        // sensor 0 walks into base range: both connect through it
        pts[0] = Point::new(55.0, 50.0);
        tracker.set_sensor(0, pts[0]);
        assert_matches(&mut tracker, &pts, base, rc);
        // it only works while sensor 1 is in range of sensor 0
        pts[1] = Point::new(62.0, 50.0);
        tracker.set_sensor(1, pts[1]);
        assert_matches(&mut tracker, &pts, base, rc);
        assert_eq!(tracker.hops(1), Some(2));
        // sensor 0 leaves base range again
        pts[0] = Point::new(80.0, 50.0);
        tracker.set_sensor(0, pts[0]);
        assert_matches(&mut tracker, &pts, base, rc);
        assert!(!tracker.is_connected(0));
    }

    #[test]
    fn batched_moves_rebuild_and_stay_exact() {
        let base = Point::ORIGIN;
        let rc = 15.0;
        let mut pts: Vec<Point> = (0..10)
            .map(|i| Point::new(10.0 * i as f64 + 5.0, 0.0))
            .collect();
        let mut tracker = ConnectivityTracker::new(&pts, base, rc);
        for (i, p) in pts.iter_mut().enumerate() {
            *p = Point::new(p.x, 12.0 * (i % 3) as f64);
            tracker.set_sensor(i, *p);
        }
        assert_matches(&mut tracker, &pts, base, rc);
    }

    #[test]
    fn redundant_sets_are_noops() {
        let base = Point::ORIGIN;
        let pts = vec![Point::new(5.0, 0.0)];
        let mut tracker = ConnectivityTracker::new(&pts, base, 10.0);
        for _ in 0..3 {
            tracker.set_sensor(0, pts[0]);
        }
        assert!(tracker.is_connected(0));
        assert_eq!(tracker.len(), 1);
        assert!(!tracker.is_empty());
        assert_eq!(tracker.rc(), 10.0);
        assert_eq!(tracker.base(), base);
    }

    #[test]
    fn empty_tracker() {
        let mut tracker = ConnectivityTracker::new(&[], Point::ORIGIN, 10.0);
        assert!(tracker.is_empty());
        assert!(tracker.all_connected(), "vacuously true");
        assert_eq!(tracker.connected_mask(), Vec::<bool>::new());
    }

    #[test]
    fn gained_shortcut_lowers_descendant_hops() {
        // A raised sensor that relabels *below* its old hop count must
        // propagate the improvement to untouched neighbors (the phase 3
        // raised-below-old seeding).
        let base = Point::ORIGIN;
        let rc = 10.0;
        // long chain: 0..=4 at hops 1..=5, with a tail 5 hanging off 4
        let mut pts: Vec<Point> = (0..6)
            .map(|i| Point::new(8.0 * i as f64 + 8.0, 0.0))
            .collect();
        let mut tracker = ConnectivityTracker::new(&pts, base, rc);
        assert_eq!(tracker.hops(5), Some(6));
        // sensor 4 jumps right next to the base: its support (3) is
        // unchanged, but its hop count drops to 1 and 5 must follow —
        // and sensor 5 keeps its link only because 4 lands in range.
        pts[4] = Point::new(2.0, 1.0);
        pts[5] = Point::new(11.5, 1.0); // out of base range, in range of 4
        tracker.set_sensor(4, pts[4]);
        tracker.set_sensor(5, pts[5]);
        assert_matches(&mut tracker, &pts, base, rc);
        assert_eq!(tracker.hops(4), Some(1));
        assert_eq!(tracker.hops(5), Some(2));
    }
}
