//! Message taxonomy and hop accounting (Table 1 of the paper).

use std::fmt;

/// Every protocol message kind the two schemes send.
///
/// Each enum variant corresponds to a message named in the paper;
/// counting *transmissions* (hops) of these is exactly what Table 1
/// reports for FLOOR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// §4.1 connectivity flood ("you are connected").
    ConnectFlood,
    /// §3.3 lazy-movement loop probe.
    PathParentInquiry,
    /// §4.2 subtree locking request.
    LockTree,
    /// §4.2 subtree unlock / lock rejection.
    UnlockTree,
    /// §4.2 motion coordination with neighbors (position/period probes).
    MotionProbe,
    /// §5.3 arrival report to the base station.
    Report,
    /// §5.3 base-station response carrying the ancestor list.
    AncestorList,
    /// §5.3 serialized movable/fixed classification token.
    ClassifyToken,
    /// §5.4 point-coverage query routed to floor headers.
    CoverageQuery,
    /// §5.4 floor-header response.
    CoverageReply,
    /// §5.5.2 random-walk invitation carrying an expansion point.
    Invitation,
    /// §5.5.2 movable sensor's acceptance.
    AcceptInvitation,
    /// §5.5.2 inviter acknowledgment (exactly one per EP).
    Acknowledge,
    /// §5.5.2 inviter rejection (EP already taken).
    Reject,
    /// §5.4/§5.5.2 location updates toward the root (virtual nodes,
    /// floor-header bookkeeping).
    LocationUpdate,
}

impl MsgKind {
    /// All message kinds, for iteration/reporting.
    pub const ALL: [MsgKind; 15] = [
        MsgKind::ConnectFlood,
        MsgKind::PathParentInquiry,
        MsgKind::LockTree,
        MsgKind::UnlockTree,
        MsgKind::MotionProbe,
        MsgKind::Report,
        MsgKind::AncestorList,
        MsgKind::ClassifyToken,
        MsgKind::CoverageQuery,
        MsgKind::CoverageReply,
        MsgKind::Invitation,
        MsgKind::AcceptInvitation,
        MsgKind::Acknowledge,
        MsgKind::Reject,
        MsgKind::LocationUpdate,
    ];

    fn index(self) -> usize {
        MsgKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("listed")
    }
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MsgKind::ConnectFlood => "ConnectFlood",
            MsgKind::PathParentInquiry => "PathParentInquiry",
            MsgKind::LockTree => "LockTree",
            MsgKind::UnlockTree => "UnlockTree",
            MsgKind::MotionProbe => "MotionProbe",
            MsgKind::Report => "Report",
            MsgKind::AncestorList => "AncestorList",
            MsgKind::ClassifyToken => "ClassifyToken",
            MsgKind::CoverageQuery => "CoverageQuery",
            MsgKind::CoverageReply => "CoverageReply",
            MsgKind::Invitation => "Invitation",
            MsgKind::AcceptInvitation => "AcceptInvitation",
            MsgKind::Acknowledge => "Acknowledge",
            MsgKind::Reject => "Reject",
            MsgKind::LocationUpdate => "LocationUpdate",
        };
        f.write_str(name)
    }
}

/// Counts message transmissions (hops) by kind.
///
/// # Examples
///
/// ```
/// use msn_net::{MessageCounter, MsgKind};
///
/// let mut mc = MessageCounter::new();
/// mc.record(MsgKind::Invitation, 40); // one invitation walking 40 hops
/// mc.record(MsgKind::Acknowledge, 3); // ack routed over 3 hops
/// assert_eq!(mc.total(), 43);
/// assert_eq!(mc.count(MsgKind::Invitation), 40);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MessageCounter {
    counts: [u64; MsgKind::ALL.len()],
}

impl MessageCounter {
    /// A counter with all kinds at zero.
    pub fn new() -> Self {
        MessageCounter::default()
    }

    /// Records `hops` transmissions of `kind`.
    #[inline]
    pub fn record(&mut self, kind: MsgKind, hops: u64) {
        self.counts[kind.index()] += hops;
    }

    /// Transmissions recorded for `kind`.
    #[inline]
    pub fn count(&self, kind: MsgKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total transmissions over all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Average transmissions per node for an `n`-node network.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn per_node(&self, n: usize) -> f64 {
        assert!(n > 0, "need at least one node");
        self.total() as f64 / n as f64
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &MessageCounter) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Iterates over `(kind, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (MsgKind, u64)> + '_ {
        MsgKind::ALL
            .iter()
            .map(|&k| (k, self.count(k)))
            .filter(|&(_, c)| c > 0)
    }
}

impl fmt::Display for MessageCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "messages: total {}", self.total())?;
        for (k, c) in self.iter() {
            write!(f, ", {k}={c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut mc = MessageCounter::new();
        mc.record(MsgKind::ConnectFlood, 100);
        mc.record(MsgKind::Invitation, 50);
        mc.record(MsgKind::Invitation, 25);
        assert_eq!(mc.count(MsgKind::Invitation), 75);
        assert_eq!(mc.count(MsgKind::ConnectFlood), 100);
        assert_eq!(mc.count(MsgKind::Reject), 0);
        assert_eq!(mc.total(), 175);
        assert_eq!(mc.per_node(25), 7.0);
    }

    #[test]
    fn merge_counters() {
        let mut a = MessageCounter::new();
        a.record(MsgKind::Report, 5);
        let mut b = MessageCounter::new();
        b.record(MsgKind::Report, 3);
        b.record(MsgKind::CoverageQuery, 7);
        a.merge(&b);
        assert_eq!(a.count(MsgKind::Report), 8);
        assert_eq!(a.count(MsgKind::CoverageQuery), 7);
    }

    #[test]
    fn iter_skips_zeros() {
        let mut mc = MessageCounter::new();
        mc.record(MsgKind::LockTree, 2);
        let pairs: Vec<_> = mc.iter().collect();
        assert_eq!(pairs, vec![(MsgKind::LockTree, 2)]);
    }

    #[test]
    fn all_kinds_have_distinct_indices() {
        use std::collections::HashSet;
        let set: HashSet<usize> = MsgKind::ALL.iter().map(|k| k.index()).collect();
        assert_eq!(set.len(), MsgKind::ALL.len());
    }

    #[test]
    fn display_formats() {
        let mut mc = MessageCounter::new();
        mc.record(MsgKind::Invitation, 4);
        let s = format!("{mc}");
        assert!(s.contains("total 4"));
        assert!(s.contains("Invitation=4"));
    }
}
