//! The one range-comparison rule every link test shares.

use msn_geom::Point;

/// Absolute slack (m) applied to every radio-range comparison.
///
/// Before this constant existed the substrate disagreed with itself:
/// [`crate::DiskGraph::flood_from_base`] admitted base links at
/// `dist <= rc + 1e-9` while [`crate::SpatialGrid`] (and therefore
/// [`crate::DiskGraph::build`]) tested `dist² <= rc² + 1e-9` — a
/// window about fifty times narrower at `rc = 60`. A sensor pair at
/// exactly the same distance as an admitted base link could thus be
/// rejected as a graph edge, making "connected" depend on *which*
/// endpoint happened to be the base. Every range test now goes
/// through [`within_range`].
pub const RANGE_EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` are within radio range `r` of each
/// other, under the shared [`RANGE_EPS`] slack: `dist(a, b) <= r +
/// RANGE_EPS`, evaluated on squared distances to skip the square root.
#[inline]
pub fn within_range(a: Point, b: Point, r: f64) -> bool {
    let slack = r + RANGE_EPS;
    a.dist_sq(b) <= slack * slack
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_is_inclusive_with_slack() {
        let a = Point::new(0.0, 0.0);
        assert!(within_range(a, Point::new(10.0, 0.0), 10.0));
        assert!(within_range(
            a,
            Point::new(10.0 + 0.5 * RANGE_EPS, 0.0),
            10.0
        ));
        assert!(!within_range(
            a,
            Point::new(10.0 + 3.0 * RANGE_EPS, 0.0),
            10.0
        ));
        assert!(!within_range(a, Point::new(10.1, 0.0), 10.0));
    }
}
