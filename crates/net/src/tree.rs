//! The spanning forest rooted at the base station.

use std::fmt;

/// The parent link of a node in the deployment tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parent {
    /// Not yet part of the tree (disconnected sensor).
    None,
    /// Directly attached to the base station.
    Base,
    /// Child of another sensor.
    Node(usize),
}

/// The tree (forest while forming) that both CPVF and FLOOR maintain:
/// every connected sensor has a parent — the base station or another
/// connected sensor — and the structure stays loop-free.
///
/// Supports the operations the protocols need: attach/detach, ancestor
/// lists (§5.3's classification), loop-safe reparenting (§4.2's
/// `LockTree`), and subtree enumeration (lock scope / movable checks).
///
/// # Examples
///
/// ```
/// use msn_net::{Parent, Tree};
///
/// let mut tree = Tree::new(3);
/// tree.attach(0, Parent::Base);
/// tree.attach(1, Parent::Node(0));
/// tree.attach(2, Parent::Node(1));
/// assert_eq!(tree.ancestors(2), vec![1, 0]);
/// assert!(tree.would_create_loop(0, 2), "0 cannot become a child of its descendant");
/// ```
#[derive(Debug, Clone)]
pub struct Tree {
    parent: Vec<Parent>,
    children: Vec<Vec<usize>>,
}

impl Tree {
    /// An empty forest over `n` sensors (all disconnected).
    pub fn new(n: usize) -> Self {
        Tree {
            parent: vec![Parent::None; n],
            children: vec![Vec::new(); n],
        }
    }

    /// Number of sensors.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the forest tracks zero sensors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The parent link of `i`.
    #[inline]
    pub fn parent(&self, i: usize) -> Parent {
        self.parent[i]
    }

    /// The children of `i`.
    #[inline]
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Returns `true` if `i` is attached (to the base or a sensor).
    #[inline]
    pub fn in_tree(&self, i: usize) -> bool {
        !matches!(self.parent[i], Parent::None)
    }

    /// Number of attached sensors.
    pub fn attached_count(&self) -> usize {
        (0..self.len()).filter(|&i| self.in_tree(i)).count()
    }

    /// Attaches `i` under `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is already attached, if the parent is not itself
    /// attached, or if the attachment would create a loop.
    pub fn attach(&mut self, i: usize, parent: Parent) {
        assert!(!self.in_tree(i), "sensor {i} is already attached");
        match parent {
            Parent::None => panic!("cannot attach {i} to nothing"),
            Parent::Base => {}
            Parent::Node(p) => {
                assert!(self.in_tree(p), "parent {p} must be attached first");
                assert!(
                    !self.would_create_loop(i, p),
                    "loop attaching {i} under {p}"
                );
                self.children[p].push(i);
            }
        }
        self.parent[i] = parent;
    }

    /// Detaches `i` (its children keep pointing at it; callers
    /// re-parent children first — see §5.3).
    ///
    /// # Panics
    ///
    /// Panics if `i` still has children or is not attached.
    pub fn detach(&mut self, i: usize) {
        assert!(self.in_tree(i), "sensor {i} is not attached");
        assert!(
            self.children[i].is_empty(),
            "sensor {i} still has children; re-parent them first"
        );
        if let Parent::Node(p) = self.parent[i] {
            self.children[p].retain(|&c| c != i);
        }
        self.parent[i] = Parent::None;
    }

    /// Moves `i` under a new parent, keeping the structure loop-free.
    ///
    /// # Panics
    ///
    /// Panics if the move would create a loop or involves detached
    /// nodes.
    pub fn reparent(&mut self, i: usize, new_parent: Parent) {
        assert!(self.in_tree(i), "sensor {i} is not attached");
        match new_parent {
            Parent::None => panic!("cannot reparent {i} to nothing"),
            Parent::Base => {}
            Parent::Node(p) => {
                assert!(self.in_tree(p), "new parent {p} is not attached");
                assert!(
                    !self.would_create_loop(i, p),
                    "loop reparenting {i} under {p}"
                );
            }
        }
        if let Parent::Node(old) = self.parent[i] {
            self.children[old].retain(|&c| c != i);
        }
        if let Parent::Node(p) = new_parent {
            self.children[p].push(i);
        }
        self.parent[i] = new_parent;
    }

    /// The ancestor chain of `i`, nearest first, excluding the base
    /// station. This is the ancestor ID list the base station sends
    /// back to newly connected FLOOR sensors (§5.3).
    pub fn ancestors(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.parent[i];
        let mut steps = 0;
        while let Parent::Node(p) = cur {
            out.push(p);
            cur = self.parent[p];
            steps += 1;
            assert!(steps <= self.len(), "parent chain loop detected");
        }
        out
    }

    /// Hop distance from `i` to the base station (`None` if detached).
    pub fn depth(&self, i: usize) -> Option<usize> {
        if !self.in_tree(i) {
            return None;
        }
        Some(self.ancestors(i).len() + 1)
    }

    /// Returns `true` if making `candidate_parent` the parent of `i`
    /// would create a loop (i.e. `candidate_parent` is `i` itself or a
    /// descendant of `i`). This is the ancestor-list check of §5.3.
    pub fn would_create_loop(&self, i: usize, candidate_parent: usize) -> bool {
        if i == candidate_parent {
            return true;
        }
        // candidate is a descendant of i iff i appears among candidate's
        // ancestors.
        let mut cur = self.parent[candidate_parent];
        let mut steps = 0;
        while let Parent::Node(p) = cur {
            if p == i {
                return true;
            }
            cur = self.parent[p];
            steps += 1;
            if steps > self.len() {
                return true; // defensive: malformed chain counts as loop
            }
        }
        false
    }

    /// All nodes in the subtree rooted at `i`, including `i` — the
    /// scope a `LockTree` message walks (§4.2).
    pub fn subtree(&self, i: usize) -> Vec<usize> {
        let mut out = vec![i];
        let mut stack = vec![i];
        while let Some(u) = stack.pop() {
            for &c in &self.children[u] {
                out.push(c);
                stack.push(c);
            }
        }
        out
    }

    /// Tree-path hop count between two attached nodes via their lowest
    /// common ancestor (base station counts as the common root).
    ///
    /// Used to charge message costs for tree-routed queries (§5.4).
    pub fn tree_hops(&self, a: usize, b: usize) -> usize {
        if a == b {
            return 0;
        }
        let anc_a = {
            let mut v = vec![a];
            v.extend(self.ancestors(a));
            v
        };
        let anc_b = {
            let mut v = vec![b];
            v.extend(self.ancestors(b));
            v
        };
        // Position of each node in the other's ancestor list.
        for (da, na) in anc_a.iter().enumerate() {
            if let Some(db) = anc_b.iter().position(|nb| nb == na) {
                return da + db;
            }
        }
        // No common sensor ancestor: both routes go through the base.
        anc_a.len() + anc_b.len()
    }
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tree({}/{} attached)", self.attached_count(), self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> Tree {
        // base <- 0 <- 1 <- 2 ; base <- 3
        let mut t = Tree::new(5);
        t.attach(0, Parent::Base);
        t.attach(1, Parent::Node(0));
        t.attach(2, Parent::Node(1));
        t.attach(3, Parent::Base);
        t
    }

    #[test]
    fn attach_and_query() {
        let t = sample_tree();
        assert_eq!(t.parent(0), Parent::Base);
        assert_eq!(t.parent(2), Parent::Node(1));
        assert_eq!(t.parent(4), Parent::None);
        assert!(t.in_tree(3));
        assert!(!t.in_tree(4));
        assert_eq!(t.attached_count(), 4);
        assert_eq!(t.children(0), &[1]);
        assert_eq!(t.depth(2), Some(3));
        assert_eq!(t.depth(4), None);
    }

    #[test]
    fn ancestors_nearest_first() {
        let t = sample_tree();
        assert_eq!(t.ancestors(2), vec![1, 0]);
        assert!(t.ancestors(0).is_empty());
        assert!(t.ancestors(3).is_empty());
    }

    #[test]
    fn loop_detection() {
        let t = sample_tree();
        assert!(t.would_create_loop(0, 2), "descendant as parent");
        assert!(t.would_create_loop(1, 1), "self as parent");
        assert!(!t.would_create_loop(2, 3), "other branch is fine");
        assert!(!t.would_create_loop(3, 2));
    }

    #[test]
    fn subtree_enumeration() {
        let t = sample_tree();
        let mut s = t.subtree(0);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2]);
        assert_eq!(t.subtree(3), vec![3]);
    }

    #[test]
    fn reparent_moves_branches() {
        let mut t = sample_tree();
        t.reparent(2, Parent::Node(3));
        assert_eq!(t.parent(2), Parent::Node(3));
        assert!(t.children(1).is_empty());
        assert_eq!(t.children(3), &[2]);
        assert_eq!(t.ancestors(2), vec![3]);
    }

    #[test]
    #[should_panic(expected = "loop")]
    fn reparent_rejects_loops() {
        let mut t = sample_tree();
        t.reparent(0, Parent::Node(2));
    }

    #[test]
    fn detach_leaf() {
        let mut t = sample_tree();
        t.detach(2);
        assert!(!t.in_tree(2));
        assert!(t.children(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "children")]
    fn detach_with_children_panics() {
        let mut t = sample_tree();
        t.detach(1);
    }

    #[test]
    fn tree_hops() {
        let t = sample_tree();
        assert_eq!(t.tree_hops(2, 0), 2);
        assert_eq!(t.tree_hops(0, 2), 2);
        assert_eq!(t.tree_hops(2, 2), 0);
        assert_eq!(t.tree_hops(1, 2), 1);
        // cross-branch goes through the base: 2 -> 1 -> 0 -> base -> 3
        assert_eq!(t.tree_hops(2, 3), 4);
    }
}
