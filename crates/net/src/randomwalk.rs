//! TTL-bounded random walks (FLOOR's invitation dissemination, §5.5.2).

use crate::DiskGraph;
use rand::Rng;

/// Read-only neighbor-list access for disk-graph consumers.
///
/// Both the snapshot [`DiskGraph`] and the incremental
/// [`crate::AdjacencyTracker`] expose their adjacency through this
/// trait, so walk-style consumers ([`random_walk`]) run on either.
/// Implementations must return lists in the shared grid scan order —
/// consumers observe both order and length (a random walk draws its
/// neighbor picks from the list), so the order is part of the
/// simulation output.
pub trait Neighbors {
    /// Neighbors of node `i`, in the shared grid scan order.
    fn neighbors_of(&self, i: usize) -> &[usize];
}

impl Neighbors for DiskGraph {
    fn neighbors_of(&self, i: usize) -> &[usize] {
        self.neighbors(i)
    }
}

/// Performs a TTL-bounded *non-backtracking* random walk on the disk
/// graph starting at `start`.
///
/// Each hop forwards the message to a uniformly random neighbor other
/// than the one it came from (falling back to backtracking only at
/// dead ends). Non-backtracking is how gossip walks are implemented in
/// practice: on the chain-like topologies a FLOOR vine produces, a
/// plain walk would diffuse only `O(√TTL)` hops and invitations from
/// distant frontier tips would never reach the movable pool.
///
/// Returns the sequence of nodes visited *after* `start`, one entry
/// per hop (so `result.len() <= ttl`); the walk stops early only at an
/// isolated node. Revisits are allowed. Each entry costs one message
/// transmission.
///
/// # Examples
///
/// ```
/// use msn_geom::Point;
/// use msn_net::{random_walk, DiskGraph};
/// use rand::SeedableRng;
///
/// let pts: Vec<Point> = (0..5).map(|i| Point::new(i as f64 * 5.0, 0.0)).collect();
/// let g = DiskGraph::build(&pts, 6.0);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let visits = random_walk(&g, 0, 10, &mut rng);
/// assert_eq!(visits.len(), 10);
/// ```
pub fn random_walk<G: Neighbors + ?Sized, R: Rng>(
    graph: &G,
    start: usize,
    ttl: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(ttl);
    let mut prev: Option<usize> = None;
    let mut cur = start;
    for _ in 0..ttl {
        let nbrs = graph.neighbors_of(cur);
        if nbrs.is_empty() {
            break;
        }
        let next = if nbrs.len() == 1 {
            nbrs[0]
        } else {
            // choose among neighbors excluding the previous hop
            let mut pick = nbrs[rng.gen_range(0..nbrs.len())];
            for _ in 0..4 {
                if Some(pick) != prev {
                    break;
                }
                pick = nbrs[rng.gen_range(0..nbrs.len())];
            }
            if Some(pick) == prev {
                // improbable after retries; scan for any other neighbor
                *nbrs.iter().find(|&&x| Some(x) != prev).unwrap_or(&pick)
            } else {
                pick
            }
        };
        prev = Some(cur);
        cur = next;
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_geom::Point;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn chain_graph(n: usize) -> DiskGraph {
        let pts: Vec<Point> = (0..n).map(|i| Point::new(i as f64 * 5.0, 0.0)).collect();
        DiskGraph::build(&pts, 6.0)
    }

    #[test]
    fn walk_length_equals_ttl_on_connected_graph() {
        let g = chain_graph(10);
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(random_walk(&g, 5, 25, &mut rng).len(), 25);
        assert!(random_walk(&g, 5, 0, &mut rng).is_empty());
    }

    #[test]
    fn isolated_node_stops_immediately() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)];
        let g = DiskGraph::build(&pts, 5.0);
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(random_walk(&g, 0, 10, &mut rng).is_empty());
    }

    #[test]
    fn steps_are_graph_edges() {
        let g = chain_graph(10);
        let mut rng = SmallRng::seed_from_u64(9);
        let walk = random_walk(&g, 4, 50, &mut rng);
        let mut prev = 4;
        for &v in &walk {
            assert!(
                g.neighbors(prev).contains(&v),
                "{prev} -> {v} is not an edge"
            );
            prev = v;
        }
    }

    #[test]
    fn walk_eventually_explores_neighborhood() {
        let g = chain_graph(5);
        let mut rng = SmallRng::seed_from_u64(12);
        let mut visited = std::collections::HashSet::new();
        for _ in 0..20 {
            for v in random_walk(&g, 2, 10, &mut rng) {
                visited.insert(v);
            }
        }
        assert!(
            visited.len() >= 4,
            "random walks should reach most of a 5-chain"
        );
    }

    #[test]
    fn non_backtracking_covers_chain_linearly() {
        // On a chain, a non-backtracking walk starting at one end
        // marches straight to the other end.
        let g = chain_graph(20);
        let mut rng = SmallRng::seed_from_u64(5);
        let walk = random_walk(&g, 0, 19, &mut rng);
        assert_eq!(walk.last(), Some(&19), "must reach the far end");
    }

    #[test]
    fn deterministic_under_seed() {
        let g = chain_graph(8);
        let a = random_walk(&g, 3, 20, &mut SmallRng::seed_from_u64(42));
        let b = random_walk(&g, 3, 20, &mut SmallRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
