//! Incremental disk-graph adjacency (FLOOR's tick graph).
//!
//! Invariants (the incremental-tracker pattern, see
//! `ARCHITECTURE.md`):
//!
//! * **Oracle bit-identity** — after any move sequence, every
//!   neighbor list equals the corresponding
//!   [`crate::DiskGraph::build`] list *including order* (the shared
//!   grid scan order), because consumers observe it: FLOOR's TTL
//!   random walks draw neighbor picks from these lists, so list
//!   order and length are part of the RNG stream. Property-tested in
//!   `tests/properties.rs`.
//! * **Lazy dirty sets** — [`AdjacencyTracker::set_sensor`] is
//!   `O(1)`; link diffs run on the next query.
//! * **Rebuild-if-cheaper** — when at least half the fleet moved, the
//!   tracker re-queries every list instead of diffing.

use crate::{Neighbors, PointIndex};
use msn_geom::Point;
use std::collections::VecDeque;

/// Incremental counterpart of [`crate::DiskGraph::build`]: maintains
/// the full disk-graph adjacency (every neighbor list, in the shared
/// grid scan order) under sensor moves, so consumers that need *the
/// graph* every tick — FLOOR's random-walk invitations and hop
/// accounting — stop paying an `O(N · deg)` rebuild per tick.
///
/// Moves are recorded lazily ([`AdjacencyTracker::set_sensor`] is
/// `O(1)`) and reconciled on the next query in three passes over the
/// moved set: **unlink** (remove each moved sensor from its old
/// neighbors' lists), **requery** (fresh grid-order neighborhoods
/// from the maintained [`PointIndex`]), **relink** (insert each moved
/// sensor into its new neighbors' lists at the grid-order position).
/// Untouched lists keep their order; repaired entries land exactly
/// where a fresh build would put them, because every list is sorted
/// by the same `(⌊x/cell⌋, ⌊y/cell⌋, index)` key a
/// `SpatialGrid::build(points, rc.max(1.0))` query scans in. When at
/// least half the fleet moved, the tracker re-queries every list
/// instead (rebuild-if-cheaper).
///
/// Like [`crate::ConnectivityTracker`], the tracker privately
/// maintains its own [`PointIndex`] over the move stream; the
/// duplication is deliberate (sharing one index would thread
/// `&mut`-ness through every tracker's public API).
///
/// # Examples
///
/// ```
/// use msn_geom::Point;
/// use msn_net::{AdjacencyTracker, DiskGraph};
///
/// let mut pts = vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0), Point::new(40.0, 0.0)];
/// let mut tracker = AdjacencyTracker::new(&pts, 10.0);
/// assert_eq!(tracker.neighbors(0), &[1]);
/// pts[2] = Point::new(16.0, 0.0); // walks into range of sensor 1
/// tracker.set_sensor(2, pts[2]);
/// assert_eq!(tracker.neighbors(1), DiskGraph::build(&pts, 10.0).neighbors(1));
/// assert_eq!(tracker.hop_distances(0)[2], 2);
/// ```
#[derive(Debug, Clone)]
pub struct AdjacencyTracker {
    rc: f64,
    /// Incrementally-maintained bucket grid at cell `rc.max(1.0)` —
    /// the cell size [`crate::DiskGraph::build`] uses, so the index's
    /// natural query order *is* the oracle's adjacency order.
    index: PointIndex,
    /// Positions the adjacency currently reflects.
    synced: Vec<Point>,
    /// Sensors whose latest position may differ from `synced`.
    dirty: Vec<u32>,
    is_dirty: Vec<bool>,
    /// Neighbor lists over `synced`, each in grid scan order.
    adj: Vec<Vec<usize>>,
}

impl AdjacencyTracker {
    /// Builds the tracker for `positions` and communication range
    /// `rc`.
    ///
    /// # Panics
    ///
    /// Panics if `rc` is not strictly positive.
    pub fn new(positions: &[Point], rc: f64) -> Self {
        assert!(rc > 0.0, "communication range must be positive");
        let n = positions.len();
        let mut tracker = AdjacencyTracker {
            rc,
            index: PointIndex::new(positions, rc.max(1.0)),
            synced: positions.to_vec(),
            dirty: Vec::new(),
            is_dirty: vec![false; n],
            adj: vec![Vec::new(); n],
        };
        tracker.rebuild();
        tracker
    }

    /// The communication range.
    #[inline]
    pub fn rc(&self) -> f64 {
        self.rc
    }

    /// Number of tracked sensors.
    #[inline]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the tracker follows zero sensors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Records sensor `i`'s new position. `O(1)`: the link diff is
    /// deferred to the next query.
    #[inline]
    pub fn set_sensor(&mut self, i: usize, p: Point) {
        self.index.set_point(i, p);
        if !self.is_dirty[i] {
            self.is_dirty[i] = true;
            self.dirty.push(i as u32);
        }
    }

    /// Neighbors of sensor `i` on the current positions — equal to
    /// `DiskGraph::build(points, rc).neighbors(i)`, order included.
    pub fn neighbors(&mut self, i: usize) -> &[usize] {
        self.sync();
        &self.adj[i]
    }

    /// BFS hop distances from `from` (`usize::MAX` = unreachable) —
    /// equal to [`crate::DiskGraph::hop_distances`] on the current
    /// positions.
    pub fn hop_distances(&mut self, from: usize) -> Vec<usize> {
        self.sync();
        let n = self.adj.len();
        let mut dist = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        dist[from] = 0;
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            for k in 0..self.adj[u].len() {
                let v = self.adj[u][k];
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Applies pending moves so that shared reads (the
    /// [`Neighbors`] impl used by [`crate::random_walk`]) see the
    /// current positions.
    pub fn sync(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        let n = self.synced.len();
        msn_obs::counter("adj.syncs", 1);
        msn_obs::value("adj.dirty", self.dirty.len() as f64);
        // Filter no-op moves *before* the rebuild decision: a burst of
        // redundant `set_sensor` calls must not push a 10k fleet over
        // the fleet-wide rebuild threshold. The bucket-level work
        // below reconciles per shard inside the shared [`PointIndex`];
        // this tracker's own link repair is O(moved · degree).
        let dirty = std::mem::take(&mut self.dirty);
        let mut moved: Vec<u32> = Vec::with_capacity(dirty.len());
        for &i in &dirty {
            let iu = i as usize;
            let (from, to) = (self.synced[iu], self.index.point(iu));
            if from == to {
                self.is_dirty[iu] = false;
                continue;
            }
            self.synced[iu] = to;
            moved.push(i);
        }
        if moved.is_empty() {
            return;
        }
        if 2 * moved.len() >= n {
            msn_obs::counter("adj.rebuilds", 1);
            for &i in &moved {
                self.is_dirty[i as usize] = false;
            }
            self.rebuild();
            return;
        }
        msn_obs::counter("adj.repairs", 1);
        // Phase 1: unlink. Drop each moved sensor from its old
        // neighbors' lists (moved sensors' own lists are replaced
        // whole in phase 2, so moved-moved edges need no bookkeeping).
        for &i in &moved {
            let iu = i as usize;
            let old = std::mem::take(&mut self.adj[iu]);
            for &j in &old {
                if self.is_dirty[j] {
                    continue;
                }
                let list = &mut self.adj[j];
                let at = list.iter().position(|&x| x == iu).expect("symmetric edge");
                list.remove(at);
            }
        }
        // Phase 2: requery. Fresh grid-order neighborhoods for the
        // moved sensors (the index reconciles its buckets on the
        // first query).
        for &i in &moved {
            let iu = i as usize;
            self.adj[iu] = self.index.neighbors_within(iu, self.rc);
        }
        // Phase 3: relink. Insert each moved sensor into its new
        // neighbors' lists at the position the oracle's scan order
        // dictates. Keys are unique (the index breaks ties), so the
        // partition point is exact even when several moved sensors
        // land in one list.
        let cell = self.index.cell();
        for &i in &moved {
            let iu = i as usize;
            let ki = Self::order_key(self.index.point(iu), cell, iu);
            for k in 0..self.adj[iu].len() {
                let j = self.adj[iu][k];
                if self.is_dirty[j] {
                    continue;
                }
                let index = &self.index;
                let list = &mut self.adj[j];
                let at = list.partition_point(|&m| Self::order_key(index.point(m), cell, m) < ki);
                list.insert(at, iu);
            }
        }
        for &i in &moved {
            self.is_dirty[i as usize] = false;
        }
    }

    /// The `(⌊x/cell⌋, ⌊y/cell⌋, index)` key the shared grid scan
    /// order sorts by — must match `PointIndex`'s bucket key exactly.
    #[inline]
    fn order_key(p: Point, cell: f64, idx: usize) -> (i64, i64, usize) {
        (
            (p.x / cell).floor() as i64,
            (p.y / cell).floor() as i64,
            idx,
        )
    }

    /// Full reconstruction: every list re-queried from the index.
    fn rebuild(&mut self) {
        let n = self.adj.len();
        for &i in &self.dirty {
            self.is_dirty[i as usize] = false;
        }
        self.dirty.clear();
        for i in 0..n {
            self.adj[i] = self.index.neighbors_within(i, self.rc);
        }
        self.synced.copy_from_slice(self.index.points());
    }
}

impl Neighbors for AdjacencyTracker {
    /// Shared read of a neighbor list; callers must
    /// [`AdjacencyTracker::sync`] first (checked in debug builds).
    fn neighbors_of(&self, i: usize) -> &[usize] {
        debug_assert!(
            self.dirty.is_empty(),
            "sync() the tracker before shared neighbor reads"
        );
        &self.adj[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskGraph;

    fn assert_matches(tracker: &mut AdjacencyTracker, pts: &[Point], rc: f64) {
        let oracle = DiskGraph::build(pts, rc);
        for i in 0..pts.len() {
            assert_eq!(tracker.neighbors(i), oracle.neighbors(i), "list {i}");
            assert_eq!(
                tracker.hop_distances(i),
                oracle.hop_distances(i),
                "hops {i}"
            );
        }
    }

    #[test]
    fn single_moves_track_the_oracle() {
        let rc = 10.0;
        let mut pts: Vec<Point> = (0..8)
            .map(|i| Point::new(8.0 * i as f64, 0.5 * i as f64))
            .collect();
        let mut tracker = AdjacencyTracker::new(&pts, rc);
        assert_matches(&mut tracker, &pts, rc);
        // walk one sensor across the field in steps
        for step in 0..6 {
            pts[3] = Point::new(5.0 + 11.0 * step as f64, 3.0);
            tracker.set_sensor(3, pts[3]);
            assert_matches(&mut tracker, &pts, rc);
        }
    }

    #[test]
    fn batched_moves_rebuild_and_stay_exact() {
        let rc = 12.0;
        let mut pts: Vec<Point> = (0..10).map(|i| Point::new(9.0 * i as f64, 0.0)).collect();
        let mut tracker = AdjacencyTracker::new(&pts, rc);
        for (i, p) in pts.iter_mut().enumerate() {
            *p = Point::new(p.x, 7.0 * (i % 3) as f64);
            tracker.set_sensor(i, *p);
        }
        assert_matches(&mut tracker, &pts, rc);
    }

    #[test]
    fn two_sensors_landing_in_one_list_keep_grid_order() {
        let rc = 10.0;
        // sensors 1 and 2 both move next to sensor 0
        let mut pts = vec![
            Point::new(50.0, 50.0),
            Point::new(100.0, 0.0),
            Point::new(0.0, 100.0),
            Point::new(55.0, 50.0),
        ];
        let mut tracker = AdjacencyTracker::new(&pts, rc);
        pts[1] = Point::new(46.0, 49.0);
        pts[2] = Point::new(53.0, 54.0);
        tracker.set_sensor(1, pts[1]);
        tracker.set_sensor(2, pts[2]);
        assert_matches(&mut tracker, &pts, rc);
    }

    #[test]
    fn redundant_sets_are_noops() {
        let pts = vec![Point::new(5.0, 0.0), Point::new(9.0, 0.0)];
        let mut tracker = AdjacencyTracker::new(&pts, 10.0);
        for _ in 0..3 {
            tracker.set_sensor(0, pts[0]);
        }
        assert_eq!(tracker.neighbors(0), &[1]);
        assert_eq!(tracker.len(), 2);
        assert!(!tracker.is_empty());
        assert_eq!(tracker.rc(), 10.0);
    }

    #[test]
    fn empty_tracker() {
        let mut tracker = AdjacencyTracker::new(&[], 10.0);
        assert!(tracker.is_empty());
        tracker.sync();
    }

    #[test]
    fn random_walks_match_the_oracle_graph() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let rc = 10.0;
        let mut pts: Vec<Point> = (0..12)
            .map(|i| Point::new(7.0 * i as f64, (i % 4) as f64))
            .collect();
        let mut tracker = AdjacencyTracker::new(&pts, rc);
        pts[5] = Point::new(40.0, 6.0);
        tracker.set_sensor(5, pts[5]);
        tracker.sync();
        let oracle = DiskGraph::build(&pts, rc);
        let mut rng_a = SmallRng::seed_from_u64(7);
        let mut rng_b = SmallRng::seed_from_u64(7);
        let a = crate::random_walk(&tracker, 0, 30, &mut rng_a);
        let b = crate::random_walk(&oracle, 0, 30, &mut rng_b);
        assert_eq!(a, b, "walks must consume the identical RNG stream");
    }
}
