//! Unit-disk communication graphs.

use crate::{within_range, SpatialGrid};
use msn_geom::Point;
use std::collections::VecDeque;

/// The `rc`-disk graph over sensor positions: an undirected graph with
/// an edge between every pair of sensors at distance ≤ `rc`.
///
/// The base station at a fixed point participates implicitly: sensors
/// within `rc` of it are the flood seeds of
/// [`DiskGraph::flood_from_base`].
///
/// # Examples
///
/// ```
/// use msn_geom::Point;
/// use msn_net::DiskGraph;
///
/// let pts = vec![Point::new(5.0, 0.0), Point::new(12.0, 0.0), Point::new(40.0, 0.0)];
/// let g = DiskGraph::build(&pts, 10.0);
/// let connected = g.flood_from_base(&pts, Point::new(0.0, 0.0), 10.0);
/// assert_eq!(connected, vec![true, true, false]);
/// ```
#[derive(Debug, Clone)]
pub struct DiskGraph {
    rc: f64,
    adj: Vec<Vec<usize>>,
}

impl DiskGraph {
    /// Builds the disk graph for communication range `rc`.
    ///
    /// # Panics
    ///
    /// Panics if `rc` is not strictly positive.
    pub fn build(points: &[Point], rc: f64) -> Self {
        assert!(rc > 0.0, "communication range must be positive");
        let grid = SpatialGrid::build(points, rc.max(1.0));
        let adj = (0..points.len())
            .map(|i| grid.neighbors(points, i, rc))
            .collect();
        DiskGraph { rc, adj }
    }

    /// The communication range the graph was built with.
    #[inline]
    pub fn rc(&self) -> f64 {
        self.rc
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Returns `true` for a graph over zero points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Neighbors of node `i` (distance ≤ rc, excluding `i`).
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }

    /// BFS from an arbitrary seed set; returns a reached mask.
    pub fn reach_from<I: IntoIterator<Item = usize>>(&self, seeds: I) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut queue = VecDeque::new();
        for s in seeds {
            if !seen[s] {
                seen[s] = true;
                queue.push_back(s);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// Models the §4.1 connectivity flood: sensors within `rc` of the
    /// base station start the flood; the returned mask marks every
    /// sensor that (transitively) received it, i.e. the *connected*
    /// sensors.
    ///
    /// Base links use the same [`crate::within_range`] rule as the
    /// graph's own edges, so a sensor pair and a base link at equal
    /// distance always get the same verdict.
    pub fn flood_from_base(&self, points: &[Point], base: Point, rc: f64) -> Vec<bool> {
        let seeds: Vec<usize> = (0..points.len())
            .filter(|&i| within_range(points[i], base, rc))
            .collect();
        self.reach_from(seeds)
    }

    /// Returns `true` if every sensor is connected (multi-hop) to the
    /// base station.
    pub fn all_connected_to_base(&self, points: &[Point], base: Point, rc: f64) -> bool {
        self.flood_from_base(points, base, rc).iter().all(|&c| c)
    }

    /// Hop distances from the base station: sensors within `rc` of the
    /// base count 1 hop, their unflooded neighbors 2, and so on;
    /// `usize::MAX` marks disconnected sensors. The reference oracle
    /// for [`crate::ConnectivityTracker::hop_distances`].
    pub fn base_hop_distances(&self, points: &[Point], base: Point, rc: f64) -> Vec<usize> {
        let mut dist = vec![usize::MAX; points.len()];
        let mut queue = VecDeque::new();
        for i in 0..points.len() {
            if within_range(points[i], base, rc) {
                dist[i] = 1;
                queue.push_back(i);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Labels connected components; returns `labels[i]` in
    /// `0..component_count`, and the count.
    pub fn components(&self) -> (Vec<usize>, usize) {
        let n = self.adj.len();
        let mut labels = vec![usize::MAX; n];
        let mut next = 0;
        for start in 0..n {
            if labels[start] != usize::MAX {
                continue;
            }
            let mut queue = VecDeque::new();
            labels[start] = next;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for &v in &self.adj[u] {
                    if labels[v] == usize::MAX {
                        labels[v] = next;
                        queue.push_back(v);
                    }
                }
            }
            next += 1;
        }
        (labels, next)
    }

    /// BFS hop distances from `from` (usize::MAX = unreachable).
    pub fn hop_distances(&self, from: usize) -> Vec<usize> {
        let n = self.adj.len();
        let mut dist = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        dist[from] = 0;
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Nodes within `hops` tree-of-BFS hops of `i` (excluding `i`) —
    /// the "2-hop neighbor list" of §5.3.
    pub fn k_hop_neighbors(&self, i: usize, hops: usize) -> Vec<usize> {
        let mut seen = vec![false; self.adj.len()];
        let mut out = Vec::new();
        let mut frontier = vec![i];
        seen[i] = true;
        for _ in 0..hops {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in &self.adj[u] {
                    if !seen[v] {
                        seen[v] = true;
                        out.push(v);
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize, spacing: f64) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect()
    }

    #[test]
    fn chain_connectivity() {
        let pts = chain(5, 8.0);
        let g = DiskGraph::build(&pts, 10.0);
        assert!(g.all_connected_to_base(&pts, Point::ORIGIN, 10.0));
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert!(!g.is_empty());
        assert_eq!(g.len(), 5);
        assert_eq!(g.rc(), 10.0);
    }

    #[test]
    fn broken_chain_partitions() {
        let mut pts = chain(3, 8.0);
        pts.push(Point::new(100.0, 0.0));
        let g = DiskGraph::build(&pts, 10.0);
        let mask = g.flood_from_base(&pts, Point::ORIGIN, 10.0);
        assert_eq!(mask, vec![true, true, true, false]);
        assert!(!g.all_connected_to_base(&pts, Point::ORIGIN, 10.0));
        let (labels, count) = g.components();
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn base_out_of_range_of_everyone() {
        let pts = chain(3, 8.0);
        let g = DiskGraph::build(&pts, 10.0);
        let mask = g.flood_from_base(&pts, Point::new(500.0, 500.0), 10.0);
        assert!(mask.iter().all(|&c| !c));
    }

    #[test]
    fn hop_distances_and_k_hop() {
        let pts = chain(6, 8.0);
        let g = DiskGraph::build(&pts, 10.0);
        let d = g.hop_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
        // base at the origin: the chain head is 1 hop (chain spacing
        // starts at x = 0, within rc of the base)
        let bd = g.base_hop_distances(&pts, Point::ORIGIN, 10.0);
        assert_eq!(bd, vec![1, 1, 2, 3, 4, 5]);
        let far = g.base_hop_distances(&pts, Point::new(500.0, 0.0), 10.0);
        assert!(far.iter().all(|&d| d == usize::MAX));
        let mut two_hop = g.k_hop_neighbors(2, 2);
        two_hop.sort_unstable();
        assert_eq!(two_hop, vec![0, 1, 3, 4]);
    }

    #[test]
    fn boundary_links_agree_between_edges_and_base_flood() {
        use crate::RANGE_EPS;
        // Three collinear points at the same pairwise spacing, chosen
        // inside the tolerance window where the old squared-distance
        // epsilon disagreed with the base-link epsilon: the base link
        // and the sensor-sensor edge must now get the same verdict.
        let rc = 10.0;
        let spacing = rc + 0.5 * RANGE_EPS;
        let base = Point::new(0.0, 0.0);
        let pts = vec![Point::new(spacing, 0.0), Point::new(2.0 * spacing, 0.0)];
        let g = DiskGraph::build(&pts, rc);
        assert_eq!(
            g.neighbors(0),
            &[1],
            "sensor pair at base-link distance must be an edge"
        );
        assert_eq!(g.flood_from_base(&pts, base, rc), vec![true, true]);
        // just past the slack, both verdicts flip together
        let spacing = rc + 3.0 * RANGE_EPS;
        let pts = vec![Point::new(spacing, 0.0), Point::new(2.0 * spacing, 0.0)];
        let g = DiskGraph::build(&pts, rc);
        assert!(g.neighbors(0).is_empty());
        assert_eq!(g.flood_from_base(&pts, base, rc), vec![false, false]);
        // and exactly at range, both admit
        let pts = vec![Point::new(rc, 0.0), Point::new(2.0 * rc, 0.0)];
        let g = DiskGraph::build(&pts, rc);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.flood_from_base(&pts, base, rc), vec![true, true]);
    }

    #[test]
    fn dense_cluster_is_complete() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let g = DiskGraph::build(&pts, 5.0);
        assert_eq!(g.neighbors(0).len(), 2);
        assert_eq!(g.neighbors(1).len(), 2);
        let (_, count) = g.components();
        assert_eq!(count, 1);
    }
}
