//! Disk graphs, spanning trees, flooding and message accounting.
//!
//! The paper's protocols run on a unit-disk communication graph: two
//! sensors are neighbors iff they are within communication range `rc`
//! of each other, and the base station at the reference point is
//! reachable by multi-hop paths. This crate provides that substrate:
//!
//! * [`SpatialGrid`] — flat-grid index for `O(1)`-ish range queries
//!   (falls back to hash buckets for pathologically spread points);
//! * [`PointIndex`] — the incremental counterpart of `SpatialGrid`:
//!   bucket maintenance under point moves (`O(1)` lazy recording,
//!   rebuild-if-cheaper reconciliation) with query results
//!   byte-identical to a fresh grid build, so per-tick rebuilds can
//!   be replaced without changing simulation output;
//! * [`within_range`] / [`RANGE_EPS`] — the single range-tolerance
//!   rule every link test shares (graph edges, base links, range
//!   queries), so equal distances always get equal verdicts;
//! * [`DiskGraph`] — the `rc`-disk graph with BFS flooding
//!   ([`DiskGraph::flood_from_base`], modeling §4.1's connectivity
//!   flood) and component labeling;
//! * [`ConnectivityTracker`] — incremental counterpart of build +
//!   flood: maintains the base-rooted reachable set and hop distances
//!   under sensor moves by diffing link events and repairing with a
//!   bounded dynamic-BFS frontier (bit-identical to the oracle);
//! * [`Tree`] — the parent/children forest rooted at the base station,
//!   with ancestor lists (§5.3), loop-free reparent checks and subtree
//!   enumeration (the `LockTree` protocol of §4.2);
//! * [`AdjacencyTracker`] — incremental counterpart of the full
//!   `DiskGraph::build`: maintains every neighbor list (grid scan
//!   order included) under sensor moves, so per-tick graph consumers
//!   (FLOOR's random-walk invitations and hop accounting) stop
//!   rebuilding the graph;
//! * [`random_walk`] / [`Neighbors`] — TTL-bounded random walks for
//!   FLOOR's `Invitation` messages (§5.5.2), generic over the
//!   neighbor-list provider;
//! * [`MsgKind`] / [`MessageCounter`] — the message taxonomy and hop
//!   accounting behind Table 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjacency;
mod conntrack;
mod diskgraph;
mod messages;
mod point_index;
mod randomwalk;
mod range;
mod spatial;
mod tree;

pub use adjacency::AdjacencyTracker;
pub use conntrack::ConnectivityTracker;
pub use diskgraph::DiskGraph;
pub use messages::{MessageCounter, MsgKind};
pub use point_index::PointIndex;
pub use randomwalk::{random_walk, Neighbors};
pub use range::{within_range, RANGE_EPS};
pub use spatial::SpatialGrid;
pub use tree::{Parent, Tree};
