//! Hash-grid spatial index.

use msn_geom::Point;
use std::collections::HashMap;

/// A uniform hash grid over point indices for fast range queries.
///
/// Rebuilt once per simulation tick (a few hundred points), then
/// queried many times; both operations are `O(points in range)`.
///
/// # Examples
///
/// ```
/// use msn_geom::Point;
/// use msn_net::SpatialGrid;
///
/// let pts = vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0), Point::new(50.0, 0.0)];
/// let grid = SpatialGrid::build(&pts, 10.0);
/// let near = grid.within(&pts, Point::new(0.0, 0.0), 10.0);
/// assert!(near.contains(&0) && near.contains(&1) && !near.contains(&2));
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell: f64,
    buckets: HashMap<(i64, i64), Vec<usize>>,
}

impl SpatialGrid {
    /// Indexes `points` with grid cells of side `cell` meters.
    ///
    /// A good `cell` is the query radius you intend to use.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not strictly positive or a coordinate is not
    /// finite.
    pub fn build(points: &[Point], cell: f64) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        let mut buckets: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            assert!(p.x.is_finite() && p.y.is_finite(), "non-finite point {i}");
            buckets.entry(Self::key(*p, cell)).or_default().push(i);
        }
        SpatialGrid { cell, buckets }
    }

    #[inline]
    fn key(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Indices of all points within `r` of `center` (inclusive),
    /// including any point equal to `center` itself.
    pub fn within(&self, points: &[Point], center: Point, r: f64) -> Vec<usize> {
        let mut out = Vec::new();
        let span = (r / self.cell).ceil() as i64;
        let (cx, cy) = Self::key(center, self.cell);
        let r_sq = r * r;
        for gx in (cx - span)..=(cx + span) {
            for gy in (cy - span)..=(cy + span) {
                if let Some(bucket) = self.buckets.get(&(gx, gy)) {
                    for &i in bucket {
                        if points[i].dist_sq(center) <= r_sq + 1e-9 {
                            out.push(i);
                        }
                    }
                }
            }
        }
        out
    }

    /// Indices of all points within `r` of `points[i]`, excluding `i`.
    pub fn neighbors(&self, points: &[Point], i: usize, r: f64) -> Vec<usize> {
        let mut v = self.within(points, points[i], r);
        v.retain(|&j| j != i);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(Point::new(i as f64 * 10.0, j as f64 * 10.0));
            }
        }
        pts
    }

    #[test]
    fn within_matches_brute_force() {
        let pts = grid_points();
        let grid = SpatialGrid::build(&pts, 15.0);
        for r in [5.0, 10.0, 25.0, 47.0] {
            let center = Point::new(33.0, 47.0);
            let mut fast = grid.within(&pts, center, r);
            fast.sort_unstable();
            let mut slow: Vec<usize> = (0..pts.len())
                .filter(|&i| pts[i].dist(center) <= r + 1e-9)
                .collect();
            slow.sort_unstable();
            assert_eq!(fast, slow, "radius {r}");
        }
    }

    #[test]
    fn neighbors_excludes_self() {
        let pts = grid_points();
        let grid = SpatialGrid::build(&pts, 10.0);
        let n = grid.neighbors(&pts, 0, 10.0);
        assert!(!n.contains(&0));
        assert_eq!(n.len(), 2, "corner point has two axis neighbors");
    }

    #[test]
    fn duplicate_points_all_reported() {
        let pts = vec![Point::new(1.0, 1.0); 4];
        let grid = SpatialGrid::build(&pts, 5.0);
        assert_eq!(grid.within(&pts, Point::new(1.0, 1.0), 1.0).len(), 4);
        assert_eq!(grid.neighbors(&pts, 2, 1.0).len(), 3);
    }

    #[test]
    fn empty_input() {
        let pts: Vec<Point> = Vec::new();
        let grid = SpatialGrid::build(&pts, 5.0);
        assert!(grid.within(&pts, Point::ORIGIN, 100.0).is_empty());
    }

    #[test]
    fn negative_coordinates_work() {
        let pts = vec![Point::new(-12.0, -7.0), Point::new(-14.0, -7.5)];
        let grid = SpatialGrid::build(&pts, 4.0);
        let near = grid.within(&pts, Point::new(-13.0, -7.0), 3.0);
        assert_eq!(near.len(), 2);
    }
}
