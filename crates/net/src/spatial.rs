//! Grid spatial index.

use crate::within_range;
use msn_geom::Point;
use std::collections::HashMap;

/// A uniform grid over point indices for fast range queries.
///
/// Rebuilt once per simulation tick (a few hundred points), then
/// queried many times; both operations are `O(points in range)`.
///
/// The index is a flat CSR layout over the points' bounding cell
/// range — no hashing on the per-tick hot path. When the points are
/// spread so thin that a flat grid would waste memory (cell count far
/// beyond the point count), it falls back to the previous hash-bucket
/// scheme. Both layouts scan candidate cells in the same order and
/// keep indices ascending within a cell, so query results are
/// identical (order included) regardless of the layout chosen.
///
/// Range tests use the shared [`crate::within_range`] rule.
///
/// # Examples
///
/// ```
/// use msn_geom::Point;
/// use msn_net::SpatialGrid;
///
/// let pts = vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0), Point::new(50.0, 0.0)];
/// let grid = SpatialGrid::build(&pts, 10.0);
/// let near = grid.within(&pts, Point::new(0.0, 0.0), 10.0);
/// assert!(near.contains(&0) && near.contains(&1) && !near.contains(&2));
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell: f64,
    index: Index,
}

#[derive(Debug, Clone)]
enum Index {
    /// CSR buckets over the dense cell range `[ox, ox+nx) × [oy, oy+ny)`:
    /// cell `(gx, gy)` holds `items[starts[c]..starts[c+1]]` with
    /// `c = (gx - ox) * ny + (gy - oy)`.
    Dense {
        ox: i64,
        oy: i64,
        nx: i64,
        ny: i64,
        starts: Vec<u32>,
        items: Vec<u32>,
    },
    /// Hash buckets for point sets too spread out to flatten.
    Sparse(HashMap<(i64, i64), Vec<usize>>),
}

impl SpatialGrid {
    /// Indexes `points` with grid cells of side `cell` meters.
    ///
    /// A good `cell` is the query radius you intend to use.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not strictly positive or a coordinate is not
    /// finite.
    pub fn build(points: &[Point], cell: f64) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        let keys: Vec<(i64, i64)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                assert!(p.x.is_finite() && p.y.is_finite(), "non-finite point {i}");
                Self::key(*p, cell)
            })
            .collect();
        let extent = keys
            .iter()
            .skip(1)
            .fold(keys.first().map(|&(x, y)| (x, y, x, y)), |acc, &(x, y)| {
                acc.map(|(x0, y0, x1, y1)| (x0.min(x), y0.min(y), x1.max(x), y1.max(y)))
            });
        let dense = extent.and_then(|(x0, y0, x1, y1)| {
            // i128 throughout: extreme finite coordinates saturate the
            // i64 cell keys, and MAX - MIN + 1 would overflow i64.
            let nx = x1 as i128 - x0 as i128 + 1;
            let ny = y1 as i128 - y0 as i128 + 1;
            let cells = nx.checked_mul(ny)?;
            // Flatten only while the grid stays proportional to the
            // point count; simulated fleets always do, but the index
            // must not allocate gigabytes for adversarial spreads.
            if cells <= (4 * points.len() as i128).max(64) {
                Some((x0, y0, nx as i64, ny as i64, cells as usize))
            } else {
                None
            }
        });
        let index = match dense {
            Some((ox, oy, nx, ny, cells)) => {
                let cell_of = |&(x, y): &(i64, i64)| ((x - ox) * ny + (y - oy)) as usize;
                let mut starts = vec![0u32; cells + 1];
                for key in &keys {
                    starts[cell_of(key) + 1] += 1;
                }
                for c in 0..cells {
                    starts[c + 1] += starts[c];
                }
                let mut cursor = starts.clone();
                let mut items = vec![0u32; keys.len()];
                // filling in index order keeps each bucket ascending —
                // the same order the hash buckets have always produced
                for (i, key) in keys.iter().enumerate() {
                    let c = cell_of(key);
                    items[cursor[c] as usize] = i as u32;
                    cursor[c] += 1;
                }
                Index::Dense {
                    ox,
                    oy,
                    nx,
                    ny,
                    starts,
                    items,
                }
            }
            None => {
                let mut buckets: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
                for (i, key) in keys.into_iter().enumerate() {
                    buckets.entry(key).or_default().push(i);
                }
                Index::Sparse(buckets)
            }
        };
        SpatialGrid { cell, index }
    }

    #[inline]
    fn key(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Indices of all points within `r` of `center` (inclusive, under
    /// the shared [`crate::RANGE_EPS`] slack), including any point
    /// equal to `center` itself.
    pub fn within(&self, points: &[Point], center: Point, r: f64) -> Vec<usize> {
        let mut out = Vec::new();
        // Exact cell bounds of the slack-padded reach: every point
        // within_range admits lies in [center - reach, center + reach]
        // per axis, so its cell is inside this window. Computing the
        // bounds from the padded coordinates (instead of a cell-count
        // span around the center's cell) keeps the window minimal AND
        // covers the RANGE_EPS slack — a span of ceil(r / cell) cells
        // misses admissible points just past a cell boundary when r is
        // an exact multiple of the cell size.
        let reach = r + crate::RANGE_EPS;
        let (cx_lo, cy_lo) = Self::key(Point::new(center.x - reach, center.y - reach), self.cell);
        let (cx_hi, cy_hi) = Self::key(Point::new(center.x + reach, center.y + reach), self.cell);
        match &self.index {
            Index::Dense {
                ox,
                oy,
                nx,
                ny,
                starts,
                items,
            } => {
                let gx_lo = cx_lo.max(*ox);
                let gx_hi = cx_hi.min(ox + nx - 1);
                let gy_lo = cy_lo.max(*oy);
                let gy_hi = cy_hi.min(oy + ny - 1);
                for gx in gx_lo..=gx_hi {
                    for gy in gy_lo..=gy_hi {
                        let c = ((gx - ox) * ny + (gy - oy)) as usize;
                        for &i in &items[starts[c] as usize..starts[c + 1] as usize] {
                            let i = i as usize;
                            if within_range(points[i], center, r) {
                                out.push(i);
                            }
                        }
                    }
                }
            }
            Index::Sparse(buckets) => {
                for gx in cx_lo..=cx_hi {
                    for gy in cy_lo..=cy_hi {
                        if let Some(bucket) = buckets.get(&(gx, gy)) {
                            for &i in bucket {
                                if within_range(points[i], center, r) {
                                    out.push(i);
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Indices of all points within `r` of `points[i]`, excluding `i`.
    pub fn neighbors(&self, points: &[Point], i: usize, r: f64) -> Vec<usize> {
        let mut v = self.within(points, points[i], r);
        v.retain(|&j| j != i);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(Point::new(i as f64 * 10.0, j as f64 * 10.0));
            }
        }
        pts
    }

    #[test]
    fn within_matches_brute_force() {
        let pts = grid_points();
        let grid = SpatialGrid::build(&pts, 15.0);
        for r in [5.0, 10.0, 25.0, 47.0] {
            let center = Point::new(33.0, 47.0);
            let mut fast = grid.within(&pts, center, r);
            fast.sort_unstable();
            let mut slow: Vec<usize> = (0..pts.len())
                .filter(|&i| pts[i].dist(center) <= r + 1e-9)
                .collect();
            slow.sort_unstable();
            assert_eq!(fast, slow, "radius {r}");
        }
    }

    #[test]
    fn neighbors_excludes_self() {
        let pts = grid_points();
        let grid = SpatialGrid::build(&pts, 10.0);
        let n = grid.neighbors(&pts, 0, 10.0);
        assert!(!n.contains(&0));
        assert_eq!(n.len(), 2, "corner point has two axis neighbors");
    }

    #[test]
    fn duplicate_points_all_reported() {
        let pts = vec![Point::new(1.0, 1.0); 4];
        let grid = SpatialGrid::build(&pts, 5.0);
        assert_eq!(grid.within(&pts, Point::new(1.0, 1.0), 1.0).len(), 4);
        assert_eq!(grid.neighbors(&pts, 2, 1.0).len(), 3);
    }

    #[test]
    fn empty_input() {
        let pts: Vec<Point> = Vec::new();
        let grid = SpatialGrid::build(&pts, 5.0);
        assert!(grid.within(&pts, Point::ORIGIN, 100.0).is_empty());
    }

    #[test]
    fn negative_coordinates_work() {
        let pts = vec![Point::new(-12.0, -7.0), Point::new(-14.0, -7.5)];
        let grid = SpatialGrid::build(&pts, 4.0);
        let near = grid.within(&pts, Point::new(-13.0, -7.0), 3.0);
        assert_eq!(near.len(), 2);
    }

    #[test]
    fn extreme_finite_coordinates_fall_back_to_hash_buckets() {
        // cell keys saturate i64 here; the extent arithmetic must not
        // overflow and the index must quietly take the sparse path
        let pts = vec![
            Point::new(1.0e300, -1.0e300),
            Point::new(-1.0e300, 1.0e300),
            Point::new(3.0, 4.0),
        ];
        let grid = SpatialGrid::build(&pts, 2.0);
        assert!(matches!(grid.index, Index::Sparse(_)));
        assert_eq!(grid.within(&pts, Point::new(3.0, 4.0), 5.0), vec![2]);
    }

    #[test]
    fn slack_window_points_are_found_across_cell_boundaries() {
        // center right below a cell boundary, neighbor admitted only by
        // the RANGE_EPS slack and sitting two cells away: a span of
        // ceil(r / cell) cells would never scan its cell
        let r = 10.0;
        let center = Point::new(19.9999999995, 5.0);
        let pts = vec![center, Point::new(30.0, 5.0)];
        assert!(crate::within_range(pts[0], pts[1], r));
        for cell in [r, 3.3] {
            let grid = SpatialGrid::build(&pts, cell);
            assert_eq!(grid.within(&pts, center, r), vec![0, 1], "cell size {cell}");
            assert_eq!(grid.neighbors(&pts, 0, r), vec![1]);
        }
    }

    #[test]
    fn sparse_fallback_matches_dense_results_and_order() {
        // A huge spread with a tiny cell forces the hash fallback; the
        // same points with a field-sized cell use the flat layout. Both
        // must report identical indices in identical order.
        let mut pts = grid_points();
        pts.push(Point::new(1.0e9, 1.0e9)); // outlier blows up the flat extent
        let sparse = SpatialGrid::build(&pts, 10.0);
        assert!(matches!(sparse.index, Index::Sparse(_)));
        let dense = SpatialGrid::build(&grid_points(), 10.0);
        assert!(matches!(dense.index, Index::Dense { .. }));
        for r in [3.0, 12.0, 40.0] {
            let center = Point::new(41.0, 58.0);
            assert_eq!(
                sparse.within(&pts, center, r),
                dense.within(&grid_points(), center, r),
                "radius {r}"
            );
        }
    }
}
