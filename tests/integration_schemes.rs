//! Cross-scheme integration tests: the qualitative relations the
//! paper's evaluation (§6) establishes must hold in this
//! implementation.

use msn_deploy::{opt, run_scheme, vd, SchemeKind};
use msn_field::{paper_field, scatter_clustered, two_obstacle_field, Field};
use msn_geom::Rect;
use msn_sim::SimConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn clustered(field: &Field, n: usize, seed: u64) -> Vec<msn_geom::Point> {
    let b = field.bounds();
    let sub = Rect::new(0.0, 0.0, b.width() / 2.0, b.height() / 2.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    scatter_clustered(field, sub, n, &mut rng)
}

/// §5.6/§6.1: FLOOR beats CPVF in coverage when obstacles are present
/// (the paper's headline: nearly twice the coverage in Figure 8(c)).
#[test]
fn floor_beats_cpvf_with_obstacles() {
    let field = two_obstacle_field();
    let initial = clustered(&field, 120, 42);
    let cfg = SimConfig::paper(60.0, 40.0)
        .with_duration(750.0)
        .with_coverage_cell(5.0);
    let cpvf = run_scheme(SchemeKind::Cpvf, &field, &initial, &cfg);
    let floor = run_scheme(SchemeKind::Floor, &field, &initial, &cfg);
    assert!(
        floor.coverage > cpvf.coverage + 0.05,
        "FLOOR {:.3} must clearly beat CPVF {:.3} around obstacles",
        floor.coverage,
        cpvf.coverage
    );
}

/// §6.2: FLOOR moves less than CPVF (oscillation) — the paper reports
/// CPVF needing more than twice FLOOR's average moving distance.
#[test]
fn floor_moves_less_than_cpvf() {
    let field = paper_field();
    let initial = clustered(&field, 120, 42);
    let cfg = SimConfig::paper(60.0, 40.0)
        .with_duration(500.0)
        .with_coverage_cell(5.0);
    let cpvf = run_scheme(SchemeKind::Cpvf, &field, &initial, &cfg);
    let floor = run_scheme(SchemeKind::Floor, &field, &initial, &cfg);
    assert!(
        cpvf.avg_move > 1.5 * floor.avg_move,
        "CPVF {:.0} m should far exceed FLOOR {:.0} m",
        cpvf.avg_move,
        floor.avg_move
    );
}

/// §6.1.2: with a small rc/rs the VD-based baselines partition the
/// network and compute incorrect cells (Figure 10's annotations).
#[test]
fn vd_baselines_fail_at_small_rc() {
    let field = paper_field();
    let initial = clustered(&field, 120, 7);
    let cfg = SimConfig::paper(48.0, 60.0).with_coverage_cell(10.0); // rc/rs = 0.8
    for variant in [vd::VdVariant::Vor, vd::VdVariant::Minimax] {
        let r = vd::run(&field, &initial, variant, &vd::VdParams::default(), &cfg);
        assert!(
            !r.connected,
            "{variant:?} cannot keep connectivity at rc/rs = 0.8"
        );
        assert!(
            r.flags.iter().any(|f| f == "Incorrect VD"),
            "{variant:?} must compute incorrect cells at rc/rs = 0.8"
        );
    }
}

/// §6.1.1: OPT upper-bounds FLOOR's coverage, and FLOOR comes within a
/// moderate margin at a high sensor count.
#[test]
fn opt_upper_bounds_floor() {
    let field = paper_field();
    let initial = clustered(&field, 200, 13);
    let cfg = SimConfig::paper(60.0, 60.0)
        .with_duration(750.0)
        .with_coverage_cell(5.0);
    let opt_r = opt::run(&field, &initial, &opt::OptParams::default(), &cfg);
    let floor_r = run_scheme(SchemeKind::Floor, &field, &initial, &cfg);
    assert!(opt_r.coverage >= floor_r.coverage - 0.02);
    assert!(
        floor_r.coverage > opt_r.coverage * 0.6,
        "FLOOR {:.3} should be in reach of OPT {:.3}",
        floor_r.coverage,
        opt_r.coverage
    );
}

/// Sanity: every scheme produces positions inside the field and a
/// non-trivial coverage on a plain scenario.
#[test]
fn all_schemes_produce_valid_runs() {
    let field = paper_field();
    let initial = clustered(&field, 80, 3);
    let cfg = SimConfig::paper(90.0, 60.0)
        .with_duration(300.0)
        .with_coverage_cell(10.0);
    for kind in [
        SchemeKind::Cpvf,
        SchemeKind::Floor,
        SchemeKind::Vor,
        SchemeKind::Minimax,
        SchemeKind::Opt,
    ] {
        let r = run_scheme(kind, &field, &initial, &cfg);
        assert_eq!(r.positions.len(), 80, "{kind}: sensor count preserved");
        assert!(r.coverage > 0.05, "{kind}: coverage {:.3}", r.coverage);
        for p in &r.positions {
            assert!(
                field.bounds().inflated(1.0).contains(*p),
                "{kind}: sensor escaped the field at {p}"
            );
        }
    }
}
