//! Reproducibility: every scheme is a pure function of (field,
//! initial positions, config) — identical seeds give identical runs,
//! different seeds perturb them.

use msn_deploy::{run_scheme, SchemeKind};
use msn_field::{paper_field, scatter_clustered};
use msn_geom::Rect;
use msn_sim::SimConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn initial(seed: u64) -> Vec<msn_geom::Point> {
    let field = paper_field();
    let mut rng = SmallRng::seed_from_u64(seed);
    scatter_clustered(&field, Rect::new(0.0, 0.0, 500.0, 500.0), 60, &mut rng)
}

fn cfg(seed: u64) -> SimConfig {
    SimConfig::paper(60.0, 40.0)
        .with_duration(200.0)
        .with_coverage_cell(10.0)
        .with_seed(seed)
}

#[test]
fn identical_seeds_identical_runs() {
    let field = paper_field();
    let init = initial(4);
    for kind in [
        SchemeKind::Cpvf,
        SchemeKind::Floor,
        SchemeKind::Vor,
        SchemeKind::Minimax,
        SchemeKind::Opt,
    ] {
        let a = run_scheme(kind, &field, &init, &cfg(5));
        let b = run_scheme(kind, &field, &init, &cfg(5));
        assert_eq!(
            a.coverage, b.coverage,
            "{kind} coverage must be deterministic"
        );
        assert_eq!(
            a.avg_move, b.avg_move,
            "{kind} movement must be deterministic"
        );
        assert_eq!(
            a.messages.total(),
            b.messages.total(),
            "{kind} messages must be deterministic"
        );
        assert_eq!(
            a.positions, b.positions,
            "{kind} layout must be deterministic"
        );
    }
}

#[test]
fn different_sim_seeds_perturb_randomized_schemes() {
    let field = paper_field();
    let init = initial(4);
    // FLOOR uses randomness (invitation walks, backoff): different
    // seeds must yield different trajectories.
    let a = run_scheme(SchemeKind::Floor, &field, &init, &cfg(5));
    let b = run_scheme(SchemeKind::Floor, &field, &init, &cfg(6));
    assert_ne!(
        a.positions, b.positions,
        "different seeds should explore different layouts"
    );
}

#[test]
fn different_initial_layouts_change_outcomes() {
    let field = paper_field();
    let a = run_scheme(SchemeKind::Cpvf, &field, &initial(1), &cfg(5));
    let b = run_scheme(SchemeKind::Cpvf, &field, &initial(2), &cfg(5));
    assert_ne!(a.positions, b.positions);
}
