//! Integration tests for the measurement machinery: message
//! accounting, coverage timelines and convergence metrics must behave
//! the way the paper's evaluation relies on.

use msn_deploy::floor::{self, FloorParams};
use msn_deploy::{cpvf, SchemeKind};
use msn_field::{paper_field, scatter_clustered, Field};
use msn_geom::Rect;
use msn_net::MsgKind;
use msn_sim::SimConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn clustered(field: &Field, n: usize, seed: u64) -> Vec<msn_geom::Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    scatter_clustered(field, Rect::new(0.0, 0.0, 200.0, 200.0), n, &mut rng)
}

fn cfg() -> SimConfig {
    SimConfig::paper(50.0, 35.0)
        .with_duration(250.0)
        .with_coverage_cell(10.0)
}

/// Table 1's driver: invitation message counts grow with the TTL while
/// everything else stays comparable.
#[test]
fn invitation_cost_grows_with_ttl() {
    let field = Field::open(500.0, 500.0);
    let initial = clustered(&field, 50, 2);
    let mut last = 0u64;
    for ttl in [5usize, 15, 30] {
        let params = FloorParams {
            invitation_ttl: Some(ttl),
            ..FloorParams::default()
        };
        let r = floor::run(&field, &initial, &params, &cfg());
        let inv = r.messages.count(MsgKind::Invitation);
        assert!(
            inv >= last,
            "TTL {ttl}: invitation hops {inv} must not shrink below {last}"
        );
        last = inv;
    }
}

/// The §5.4 coverage queries are tree-routed and accounted.
#[test]
fn floor_charges_coverage_queries_symmetrically() {
    let field = Field::open(500.0, 500.0);
    let initial = clustered(&field, 50, 3);
    let r = floor::run(&field, &initial, &FloorParams::default(), &cfg());
    assert_eq!(
        r.messages.count(MsgKind::CoverageQuery),
        r.messages.count(MsgKind::CoverageReply),
        "every query gets exactly one reply over the same route"
    );
    assert!(r.messages.count(MsgKind::Report) > 0);
    assert_eq!(
        r.messages.count(MsgKind::Report),
        r.messages.count(MsgKind::AncestorList),
        "every arrival report is answered with an ancestor list"
    );
}

/// Coverage timelines are sampled on schedule and stay within [0, 1].
#[test]
fn coverage_timeline_is_well_formed() {
    let field = Field::open(500.0, 500.0);
    let initial = clustered(&field, 40, 4);
    for kind in [SchemeKind::Cpvf, SchemeKind::Floor] {
        let r = msn_deploy::run_scheme(kind, &field, &initial, &cfg());
        assert!(!r.coverage_timeline.is_empty());
        let mut prev_t = -1.0;
        for &(t, c) in &r.coverage_timeline {
            assert!(t > prev_t, "{kind}: timeline must be strictly ordered");
            assert!((0.0..=1.0).contains(&c), "{kind}: coverage out of range");
            prev_t = t;
        }
        if let Some(conv) = r.convergence_time {
            assert!(conv <= cfg().duration);
        }
    }
}

/// CPVF's tree-locking cost only accrues when parent changes happen,
/// and motion probing dominates its message budget (two per maintained
/// link per planned move).
#[test]
fn cpvf_message_profile() {
    let field = paper_field();
    let initial = clustered(&field, 60, 5);
    let r = cpvf::run(&field, &initial, &cpvf::CpvfParams::default(), &cfg());
    let probes = r.messages.count(MsgKind::MotionProbe);
    assert!(probes > 0, "connected sensors must coordinate moves");
    assert_eq!(
        r.messages.count(MsgKind::LockTree),
        r.messages.count(MsgKind::UnlockTree),
        "every lock is matched by an unlock"
    );
    // Flood accounting: at least one message per sensor that ever
    // connected.
    assert!(r.messages.count(MsgKind::ConnectFlood) >= 60);
}

/// Moving distance is conserved arithmetic: avg · n == total, max ≥ avg.
#[test]
fn movement_accounting_is_consistent() {
    let field = Field::open(500.0, 500.0);
    let initial = clustered(&field, 45, 6);
    for kind in [SchemeKind::Cpvf, SchemeKind::Floor, SchemeKind::Opt] {
        let r = msn_deploy::run_scheme(kind, &field, &initial, &cfg());
        assert!(
            (r.avg_move * 45.0 - r.total_move).abs() < 1e-6,
            "{kind}: avg/total mismatch"
        );
        assert!(r.max_move + 1e-9 >= r.avg_move, "{kind}: max below avg");
        assert!(r.total_move >= 0.0);
    }
}
