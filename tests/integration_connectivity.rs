//! Integration tests for the paper's headline guarantee: CPVF and
//! FLOOR end fully connected to the base station for arbitrary
//! `rc`/`rs` ratios, densities and obstacle layouts.

use msn_deploy::{cpvf, floor};
use msn_field::{
    random_obstacle_field, scatter_clustered, two_obstacle_field, Field, RandomObstacleParams,
};
use msn_geom::Rect;
use msn_sim::SimConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn clustered(field: &Field, n: usize, side: f64, seed: u64) -> Vec<msn_geom::Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    scatter_clustered(field, Rect::new(0.0, 0.0, side, side), n, &mut rng)
}

fn cfg(rc: f64, rs: f64, duration: f64) -> SimConfig {
    SimConfig::paper(rc, rs)
        .with_duration(duration)
        .with_coverage_cell(10.0)
}

#[test]
fn cpvf_connects_across_rc_rs_ratios() {
    let field = Field::open(400.0, 400.0);
    for (rc, rs) in [(20.0, 60.0), (40.0, 40.0), (80.0, 25.0)] {
        let initial = clustered(&field, 30, 150.0, 17);
        let r = cpvf::run(
            &field,
            &initial,
            &cpvf::CpvfParams::default(),
            &cfg(rc, rs, 400.0),
        );
        assert!(r.connected, "CPVF must end connected at rc={rc} rs={rs}");
    }
}

#[test]
fn floor_connects_across_rc_rs_ratios() {
    let field = Field::open(400.0, 400.0);
    for (rc, rs) in [(20.0, 60.0), (40.0, 40.0), (80.0, 25.0)] {
        let initial = clustered(&field, 30, 150.0, 23);
        let r = floor::run(
            &field,
            &initial,
            &floor::FloorParams::default(),
            &cfg(rc, rs, 400.0),
        );
        assert!(r.connected, "FLOOR must end connected at rc={rc} rs={rs}");
    }
}

#[test]
fn cpvf_connects_with_two_obstacles() {
    let field = two_obstacle_field();
    let initial = clustered(&field, 60, 450.0, 5);
    let r = cpvf::run(
        &field,
        &initial,
        &cpvf::CpvfParams::default(),
        &cfg(60.0, 40.0, 500.0),
    );
    assert!(r.connected);
}

#[test]
fn cpvf_connects_on_random_obstacle_fields() {
    // A handful of the Figure 13 workload instances.
    let params = RandomObstacleParams::default();
    for seed in 0..3u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let field = random_obstacle_field(&params, &mut rng);
        let initial = clustered(&field, 40, 450.0, seed);
        let r = cpvf::run(
            &field,
            &initial,
            &cpvf::CpvfParams::default(),
            &cfg(60.0, 40.0, 600.0),
        );
        assert!(r.connected, "seed {seed} ended disconnected");
    }
}

#[test]
fn sparse_network_still_reaches_base() {
    // Densities far below what keeps a random layout connected: the
    // walk-to-base phase must pull everyone in.
    let field = Field::open(500.0, 500.0);
    let mut rng = SmallRng::seed_from_u64(9);
    let initial = msn_field::scatter_uniform(&field, 12, &mut rng);
    let r = cpvf::run(
        &field,
        &initial,
        &cpvf::CpvfParams::default(),
        &cfg(40.0, 30.0, 700.0),
    );
    assert!(r.connected, "every sensor must walk into the tree");
}
