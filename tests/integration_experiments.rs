//! Smoke tests for the experiment harness: every figure/table module
//! must run end to end at a tiny scale and produce a plausible report.

use msn_bench::Profile;

fn tiny() -> Profile {
    Profile {
        n_base: 40,
        n_sweep: vec![30, 40],
        duration: 80.0,
        coverage_cell: 10.0,
        fig13_runs: 2,
        seed: 42,
        layouts: false,
    }
}

#[test]
fn fig3_report_contains_all_scenarios() {
    let report = msn_bench::fig3::run(&tiny());
    assert!(report.contains("Figure 3"));
    assert!(report.contains("(a) rc=60 rs=40 open"));
    assert!(report.contains("(b) rc=30 rs=40 open"));
    assert!(report.contains("(c) rc=60 rs=40 two-obstacle"));
    assert!(report.contains('%'));
}

#[test]
fn fig8_report_contains_all_scenarios() {
    let report = msn_bench::fig8::run(&tiny());
    assert!(report.contains("Figure 8"));
    assert!(report.contains("FLOOR"));
    assert!(
        report.matches('%').count() >= 6,
        "coverage and paper columns"
    );
}

#[test]
fn fig9_sweeps_all_combos() {
    let report = msn_bench::fig9::run(&tiny());
    for (rc, rs) in msn_bench::fig9::COMBOS {
        assert!(report.contains(&format!("rc = {rc} m, rs = {rs} m")));
    }
    assert!(report.contains("OPT"));
}

#[test]
fn fig10_lists_every_ratio_with_flags() {
    let report = msn_bench::fig10::run(&tiny());
    for ratio in msn_bench::fig10::RATIOS {
        assert!(report.contains(&format!("{ratio:.1}")));
    }
    assert!(report.contains("Disconn."), "small rc/rs must disconnect");
}

#[test]
fn fig11_reports_six_schemes() {
    let report = msn_bench::fig11::run(&tiny());
    for name in [
        "CPVF",
        "FLOOR",
        "VOR",
        "Minimax",
        "OPT(pattern)",
        "OPT(FLOOR)",
    ] {
        assert!(report.contains(name), "missing column {name}");
    }
}

#[test]
fn fig12_sweeps_deltas() {
    let report = msn_bench::fig12::run(&tiny());
    assert!(report.contains("one-step"));
    assert!(report.contains("two-step"));
    assert!(report.contains("off"));
}

#[test]
fn fig13_produces_cdfs() {
    let report = msn_bench::fig13::run(&tiny());
    assert!(report.contains("CDF of coverage"));
    assert!(report.contains("CDF of average moving distance"));
    assert!(report.contains("F_CPVF(x)"));
}

#[test]
fn ablation_reports_all_variants() {
    let report = msn_bench::ablation::run(&tiny());
    for name in ["full FLOOR", "no BLG", "no IFLG", "FLG only"] {
        assert!(report.contains(name), "missing variant {name}");
    }
}

#[test]
fn uniform_init_compares_both_distributions() {
    let report = msn_bench::uniform_init::run(&tiny());
    assert!(report.contains("clustered"));
    assert!(report.contains("uniform"));
    assert!(report.contains("FLOOR"));
}

#[test]
fn table1_covers_both_environments() {
    let report = msn_bench::table1::run(&tiny());
    assert!(report.contains("non-obstacle environment"));
    assert!(report.contains("two-obstacle environment"));
    assert!(report.contains("TTL=0.1N"));
}
