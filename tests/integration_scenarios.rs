//! The bundled scenario specs must parse, validate and (shrunken)
//! execute end to end through the batch runner.

use msn_scenario::{BatchRunner, ScenarioSpec};
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn bundled_specs() -> Vec<(PathBuf, ScenarioSpec)> {
    let mut specs = Vec::new();
    for entry in std::fs::read_dir(scenarios_dir()).expect("scenarios/ exists") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|x| x == "toml") {
            let text = std::fs::read_to_string(&path).unwrap();
            let spec = ScenarioSpec::from_toml_str(&text)
                .unwrap_or_else(|e| panic!("{} must parse: {e}", path.display()));
            specs.push((path, spec));
        }
    }
    specs.sort_by(|a, b| a.0.cmp(&b.0));
    specs
}

#[test]
fn all_bundled_specs_parse_and_validate() {
    let specs = bundled_specs();
    assert!(
        specs.len() >= 4,
        "at least four bundled scenarios expected, found {}",
        specs.len()
    );
    for (path, spec) in &specs {
        assert!(
            spec.validate().is_ok(),
            "{} failed validation",
            path.display()
        );
        assert!(!spec.matrix().is_empty());
        assert_eq!(
            path.file_stem().unwrap().to_string_lossy(),
            spec.name,
            "file name and scenario name must agree"
        );
    }
}

#[test]
fn bundled_specs_cover_the_advertised_field_kinds() {
    let kinds: Vec<String> = bundled_specs()
        .iter()
        .map(|(_, s)| s.field.kind().to_string())
        .collect();
    for expected in [
        "paper",
        "campus-grid",
        "corridor",
        "disaster-zone",
        "random-obstacles",
    ] {
        assert!(
            kinds.iter().any(|k| k == expected),
            "no bundled scenario uses field kind '{expected}' (got {kinds:?})"
        );
    }
}

/// Every figure/table binary must execute the exact sweep its bundled
/// spec declares: the in-code full-scale specs and the TOML files may
/// not drift apart (`cargo run -p msn-bench --bin gen_specs`
/// regenerates the files from the modules).
#[test]
fn figure_modules_and_bundled_specs_agree() {
    use msn_bench::{ablation, fig10, fig11, fig12, fig13, fig3, fig9, table1, uniform_init};
    let profile = msn_bench::Profile::full();
    let bundled: std::collections::BTreeMap<String, ScenarioSpec> = bundled_specs()
        .into_iter()
        .map(|(_, s)| (s.name.clone(), s))
        .collect();
    let expect = |module_spec: ScenarioSpec, bundled_name: &str| {
        let file_spec = bundled
            .get(bundled_name)
            .unwrap_or_else(|| panic!("scenarios/{bundled_name}.toml is bundled"));
        // fig9/fig13 predate the figN file naming; compare their sweep
        // content under the bundled name and description.
        let module_spec = module_spec
            .with_name(file_spec.name.clone())
            .with_description(file_spec.description.clone());
        assert_eq!(
            &module_spec, file_spec,
            "module vs scenarios/{bundled_name}.toml"
        );
    };
    expect(fig3::open_spec(&profile), "fig38-open");
    expect(fig3::obstacle_spec(&profile), "fig38-obstacle");
    expect(fig9::spec(&profile), "paper-field");
    expect(fig10::spec(&profile), "fig10");
    expect(fig11::spec(&profile), "fig11");
    expect(fig12::spec(&profile), "fig12");
    expect(fig13::spec(&profile), "random-obstacle-sweep");
    expect(table1::open_spec(&profile), "table1-open");
    expect(table1::obstacle_spec(&profile), "table1-obstacle");
    expect(ablation::open_spec(&profile), "ablation-open");
    expect(ablation::obstacle_spec(&profile), "ablation-obstacle");
    expect(uniform_init::spec(&profile), "uniform-init");
}

#[test]
fn a_shrunken_bundled_spec_executes_end_to_end() {
    let (_, spec) = bundled_specs()
        .into_iter()
        .find(|(_, s)| s.name == "disaster-zone")
        .expect("disaster-zone is bundled");
    let quick = spec
        .with_sensor_counts(vec![15])
        .with_duration(15.0)
        .with_coverage_cell(25.0)
        .with_repetitions(1);
    let result = BatchRunner::new().run(&quick).unwrap();
    assert_eq!(result.records.len(), quick.schemes.len());
    for record in &result.records {
        assert!(record.coverage > 0.0);
        assert!(record.avg_move >= 0.0);
    }
    assert!(result.to_json().contains("\"scenario\": \"disaster-zone\""));
    assert!(result.to_csv().lines().count() > 1);
}
