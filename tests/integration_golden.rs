//! Golden-output gate: the bundled `smoke` spec must reproduce the
//! committed `tests/fixtures/smoke-batch.json` byte-for-byte at any
//! thread count, and a resumed (interrupted) run must merge to the
//! same bytes. CI runs the same comparison through the `scenario`
//! CLI (`run` + `diff`), so a format or determinism regression fails
//! both here and there.

use msn_scenario::{diff_batches, BatchFile, BatchRunner, RunConfig, ScenarioSpec};
use std::path::PathBuf;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn smoke_spec() -> ScenarioSpec {
    let text = std::fs::read_to_string(repo_path("scenarios/smoke.toml")).unwrap();
    ScenarioSpec::from_toml_str(&text).unwrap()
}

fn golden() -> String {
    std::fs::read_to_string(repo_path("tests/fixtures/smoke-batch.json")).unwrap()
}

#[test]
fn smoke_spec_reproduces_the_committed_fixture() {
    let result = BatchRunner::new().run(&smoke_spec()).unwrap();
    assert_eq!(
        result.to_json(),
        golden(),
        "batch.json drifted from tests/fixtures/smoke-batch.json; if the change is \
         intentional, regenerate the fixture (see the comment in scenarios/smoke.toml)"
    );
}

#[test]
fn smoke_output_is_thread_count_invariant() {
    let result = RunConfig::new()
        .threads(3)
        .runner()
        .run(&smoke_spec())
        .unwrap();
    assert_eq!(result.to_json(), golden());
}

#[test]
fn diff_accepts_the_fixture_against_a_fresh_run() {
    let fresh = BatchRunner::new().run(&smoke_spec()).unwrap().to_json();
    let a = BatchFile::parse(&golden()).unwrap();
    let b = BatchFile::parse(&fresh).unwrap();
    let report = diff_batches(&a, &b, 0.0);
    assert!(report.is_match(), "{}", report.render());
    assert_eq!(report.compared, 8);
}

/// The dynamics golden: the bundled `failure-recovery` spec (the
/// examples/failure_recovery.rs workflow made first-class) must
/// reproduce its committed fixture byte-for-byte — the event engine,
/// the per-event seed streams and the recovery metrics are all under
/// this pin.
#[test]
fn failure_recovery_spec_reproduces_the_committed_fixture() {
    let text = std::fs::read_to_string(repo_path("scenarios/failure-recovery.toml")).unwrap();
    let spec = ScenarioSpec::from_toml_str(&text).unwrap();
    let golden =
        std::fs::read_to_string(repo_path("tests/fixtures/failure-recovery-batch.json")).unwrap();
    let result = BatchRunner::new().run(&spec).unwrap();
    assert_eq!(
        result.to_json(),
        golden,
        "batch.json drifted from tests/fixtures/failure-recovery-batch.json; if the \
         change is intentional, regenerate the fixture (see the comment in \
         scenarios/failure-recovery.toml)"
    );
    // the pinned run recovered: every event carries a recovery time
    for record in &result.records {
        assert_eq!(record.recovery.len(), 1);
        assert!(
            record.recovery[0].recovery_time.is_some(),
            "the bundled schedule leaves FLOOR enough time to heal"
        );
        assert!(record.recovery[0].min_coverage <= record.recovery[0].pre_coverage);
    }
}

#[test]
fn interrupted_then_resumed_run_matches_the_fixture() {
    let spec = smoke_spec();
    // simulate an interrupted sweep: only the first repetition made it
    // to disk before the batch stopped
    let partial = BatchRunner::new()
        .run(&spec.clone().with_repetitions(1))
        .unwrap();
    let prior = BatchFile::parse(&partial.to_json()).unwrap();
    let resumed = BatchRunner::new()
        .run_resuming(&spec, Some(&prior))
        .unwrap();
    assert_eq!(
        resumed.to_json(),
        golden(),
        "resume must merge cached and fresh cells into byte-identical output"
    );
}
